//! Concurrent batch scheduler with sorted-batch execution and overload
//! protection.
//!
//! The paper's end-to-end numbers assume an *upstream* component that turns
//! a stream of point operations into device-sized batches (§4.1 "batching
//! on the host"). This module is that component: N producer threads submit
//! point lookups / updates / inserts through a cloneable
//! [`SchedulerClient`]; a single executor thread owns the
//! [`CuartSession`](cuart::CuartSession) and coalesces submissions into
//! adaptive batches that flush when either
//!
//! * the queued key count reaches [`SchedulerConfig::batch_target`]
//!   (**size flush**), or
//! * the oldest queued operation has waited
//!   [`SchedulerConfig::deadline`] (**deadline flush**), or
//! * the scheduler shuts down with work still queued (**final flush**).
//!
//! Before dispatch the batch keys are **sorted** (stable, via
//! [`sort_permutation`]) so that adjacent kernel lanes traverse neighboring
//! tree paths — the coalescing win §3.1 argues for — and the **inverse
//! permutation** is applied on return so every caller sees results in its
//! own submission order. Stability preserves last-write-wins semantics for
//! duplicate update keys.
//!
//! Cross-kind ordering is preserved: the pending queue is FIFO over whole
//! requests, and a flush executes it as maximal same-kind *head runs* (all
//! leading lookups as one batch, then the following updates as one batch,
//! …), so an update submitted before a lookup by the same producer is
//! applied before that lookup executes.
//!
//! # Overload protection
//!
//! The scheduler is safe to overload — it rejects or sheds, never balloons
//! or hangs:
//!
//! * **Bounded admission** — [`SchedulerConfig::queue_cap`] bounds the
//!   *resident* operation count (queued **plus** coalesced-but-undispatched),
//!   so backlog memory is capped by construction. A full queue treats
//!   producers per [`AdmissionPolicy`]: `Block` (backpressure),
//!   `BlockWithTimeout` ([`SchedError::AdmissionTimeout`]) or `Reject`
//!   ([`SchedError::QueueFull`]).
//! * **Deadline shedding** — every request can carry a latency budget
//!   ([`SchedulerClient::lookup_with_deadline`] and friends, or the
//!   [`SchedulerConfig::op_deadline`] default). Expired requests are shed
//!   at coalesce time — before sorting and dispatch — and answered with
//!   [`SchedError::DeadlineExceeded`], so one slow batch cannot cascade
//!   into queue-wide lateness.
//! * **Circuit breaker** — sustained device faults (or a p99 modeled-latency
//!   SLO violation) trip the executor from `Closed` to `Open`: the session
//!   is pinned to the authoritative CPU path (PR-2 degradation, but held at
//!   the scheduler level so there are no per-batch retry storms or recovery
//!   probes). After [`BreakerConfig::open_cooldown`] the breaker goes
//!   `HalfOpen` and lets probe batches touch the device again; clean probes
//!   close it, a faulty probe re-trips it. Transitions emit
//!   `breaker_open`/`breaker_half_open`/`breaker_closed` batch events, the
//!   `cuart.sched.breaker_state` gauge (0 = Closed, 1 = HalfOpen,
//!   2 = Open) and the `cuart.sched.{breaker_trips,probe_batches}`
//!   counters.
//!
//! Everything here is `std`-only: a `Mutex` + two `Condvar`s for the
//! bounded submission queue, `std::sync::mpsc` for per-request replies,
//! `std::thread` for the executor.

use cuart::{CuartError, CuartIndex};
use cuart_gpu_sim::batch::{gather, scatter_inverse, sort_permutation};
use cuart_gpu_sim::exec::KernelReport;
use cuart_gpu_sim::{DeviceConfig, FaultInjector};
use cuart_telemetry::{names, BatchEvent, BatchKind, SpanNode, Telemetry};
use std::collections::VecDeque;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{self, SyncSender};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// What a producer experiences when the bounded submission queue is full.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AdmissionPolicy {
    /// Block until the executor drains enough resident ops (backpressure).
    #[default]
    Block,
    /// Block at most this long, then fail the call with
    /// [`SchedError::AdmissionTimeout`].
    BlockWithTimeout(Duration),
    /// Fail immediately with [`SchedError::QueueFull`].
    Reject,
}

/// Circuit-breaker tuning. The default never trips on a healthy system:
/// it reacts only to injected/real device faults (`fault_threshold`) and,
/// when a latency SLO is configured, to sustained p99 violations.
#[derive(Debug, Clone, PartialEq)]
pub struct BreakerConfig {
    /// Consecutive faulty batches (a session error, or any injected fault
    /// during the batch) that trip `Closed` → `Open`.
    pub fault_threshold: u32,
    /// Optional p99 SLO on the modeled batch latency, nanoseconds. `None`
    /// disables the latency trip.
    pub latency_slo_ns: Option<f64>,
    /// Sliding-window size (batches) for the p99 estimate; the SLO is
    /// only evaluated once the window is full.
    pub latency_window: usize,
    /// How long the breaker holds `Open` (CPU-only service) before
    /// letting `HalfOpen` probe batches touch the device again.
    pub open_cooldown: Duration,
    /// Clean probe batches required to close from `HalfOpen`.
    pub probe_batches: u32,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        BreakerConfig {
            fault_threshold: 3,
            latency_slo_ns: None,
            latency_window: 32,
            open_cooldown: Duration::from_millis(10),
            probe_batches: 2,
        }
    }
}

/// How the executor should form device batches.
#[derive(Debug, Clone)]
pub struct SchedulerConfig {
    /// Flush as soon as this many keys are queued (size flush). The batch
    /// handed to the session may exceed the target by at most one
    /// request's worth of keys.
    pub batch_target: usize,
    /// Flush when the oldest queued operation has waited this long
    /// (deadline flush), even if the batch is underfilled.
    pub deadline: Duration,
    /// Sort batch keys before dispatch and invert the permutation on
    /// return. `false` packs in arrival order (used by the benchmarks to
    /// measure the locality win, and by tests as the control).
    pub sort_batches: bool,
    /// Optional fault injector attached to the executor's session at open
    /// time (so the journal covers the whole scheduler lifetime).
    pub fault_injector: Option<FaultInjector>,
    /// Maximum *resident* operations — queued plus coalesced but not yet
    /// dispatched or shed. `0` means unbounded (the pre-overload-protection
    /// behavior). A single request larger than the cap can never be
    /// admitted and fails with [`SchedError::QueueFull`] under every
    /// policy.
    pub queue_cap: usize,
    /// What producers experience when the queue is at `queue_cap`.
    pub admission: AdmissionPolicy,
    /// Default per-operation latency budget. Requests still waiting past
    /// their deadline are shed at coalesce time with
    /// [`SchedError::DeadlineExceeded`]. `None` means ops wait forever
    /// (per-request deadlines still apply).
    pub op_deadline: Option<Duration>,
    /// Circuit-breaker configuration; `None` disables the breaker.
    pub breaker: Option<BreakerConfig>,
    /// When this scheduler runs as one shard of a
    /// [`ShardedScheduler`](crate::sharded::ShardedScheduler), its shard
    /// index. Every counter and gauge is then mirrored to the
    /// `cuart.sched.shard.<i>.*` twin series (the global `cuart.sched.*`
    /// series are still written, so per-shard twins sum to the global
    /// totals). `None` — the default — writes global series only.
    pub shard: Option<usize>,
}

impl Default for SchedulerConfig {
    fn default() -> Self {
        SchedulerConfig {
            batch_target: 32_768,
            deadline: Duration::from_micros(200),
            sort_batches: true,
            fault_injector: None,
            queue_cap: 0,
            admission: AdmissionPolicy::Block,
            op_deadline: None,
            breaker: Some(BreakerConfig::default()),
            shard: None,
        }
    }
}

/// Telemetry sink scoped to an optional shard: every counter and gauge
/// write lands on the global `cuart.sched.*` series and, when a shard
/// index is configured, on its `cuart.sched.shard.<i>.*` twin as well.
/// Histograms, batch events and span trees stay global-only to bound
/// series cardinality.
#[derive(Clone, Default)]
struct SchedTelemetry {
    t: Option<Arc<Telemetry>>,
    /// Pre-rendered `"cuart.sched.shard.<i>."` prefix.
    shard_prefix: Option<Arc<str>>,
}

impl SchedTelemetry {
    fn new(t: Option<Arc<Telemetry>>, shard: Option<usize>) -> SchedTelemetry {
        SchedTelemetry {
            shard_prefix: shard.map(|i| format!("{}{i}.", names::SCHED_SHARD_PREFIX).into()),
            t,
        }
    }

    /// The raw registry, for the global-only paths (histograms, events,
    /// span trees).
    fn raw(&self) -> Option<&Arc<Telemetry>> {
        self.t.as_ref()
    }

    fn shard_name(&self, global: &str) -> Option<String> {
        self.shard_prefix.as_ref().map(|p| {
            let suffix = global.strip_prefix(names::SCHED_PREFIX).unwrap_or(global);
            format!("{p}{suffix}")
        })
    }

    fn incr(&self, global: &'static str, n: u64) {
        if let Some(t) = &self.t {
            t.incr(global, n);
            if let Some(name) = self.shard_name(global) {
                t.incr(&name, n);
            }
        }
    }

    fn gauge_set(&self, global: &'static str, v: f64) {
        if let Some(t) = &self.t {
            t.gauge_set(global, v);
            if let Some(name) = self.shard_name(global) {
                t.gauge_set(&name, v);
            }
        }
    }
}

/// Why a submission could not be served.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SchedError {
    /// The executor thread is gone (it panicked, or died without a clean
    /// shutdown) and this request will never be answered.
    Disconnected,
    /// The scheduler was shut down (via [`Scheduler::join`] or `Drop`)
    /// before this request was admitted. Clean and expected during
    /// teardown races.
    Shutdown,
    /// The bounded queue was full and the admission policy was
    /// [`AdmissionPolicy::Reject`] (or the request alone exceeds the cap).
    QueueFull,
    /// The bounded queue stayed full past the
    /// [`AdmissionPolicy::BlockWithTimeout`] budget.
    AdmissionTimeout,
    /// The operation's latency budget expired while it waited for
    /// coalescing; it was shed before dispatch.
    DeadlineExceeded,
    /// The executor thread panicked; carries the panic payload.
    ExecutorPanicked(String),
    /// The session failed the batch with a non-transient error. Carries
    /// the rendered [`CuartError`](cuart::CuartError).
    Session(String),
    /// A [`ShardedScheduler`](crate::sharded::ShardedScheduler) was asked
    /// to spawn over an empty device list.
    NoShards,
}

impl fmt::Display for SchedError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SchedError::Disconnected => write!(f, "scheduler disconnected"),
            SchedError::Shutdown => write!(f, "scheduler shut down"),
            SchedError::QueueFull => write!(f, "submission queue full"),
            SchedError::AdmissionTimeout => write!(f, "admission timed out"),
            SchedError::DeadlineExceeded => write!(f, "operation deadline exceeded"),
            SchedError::ExecutorPanicked(m) => write!(f, "executor panicked: {m}"),
            SchedError::Session(e) => write!(f, "session error: {e}"),
            SchedError::NoShards => write!(f, "sharded scheduler needs at least one device"),
        }
    }
}

impl std::error::Error for SchedError {}

impl From<&CuartError> for SchedError {
    fn from(e: &CuartError) -> Self {
        SchedError::Session(e.to_string())
    }
}

/// Operation kind of one queued request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum OpKind {
    Lookup,
    Update,
    Insert,
    Range,
}

/// The rows of one inclusive range query: `(key, value)` pairs sorted by
/// key.
pub type RangeRows = Vec<(Vec<u8>, u64)>;

/// Where one request's results go back: point ops reply with one `u64`
/// per key, range ops with one row list per `[lo, hi]` pair.
enum Reply {
    Values(SyncSender<Result<Vec<u64>, SchedError>>),
    Rows(SyncSender<Result<Vec<RangeRows>, SchedError>>),
}

impl Reply {
    /// Fail the request, whichever shape it expects.
    fn send_err(&self, e: SchedError) {
        match self {
            Reply::Values(s) => {
                let _ = s.send(Err(e));
            }
            Reply::Rows(s) => {
                let _ = s.send(Err(e));
            }
        }
    }
}

/// One queued submission: a slice of same-kind point ops (or range
/// queries) from one client call, plus the channel its results go back on.
struct Request {
    kind: OpKind,
    /// Point-op keys, or the `lo` bounds of range queries.
    keys: Vec<Vec<u8>>,
    /// One `hi` bound per key for ranges; empty for point ops.
    his: Vec<Vec<u8>>,
    /// One value per key for updates/inserts; empty otherwise.
    values: Vec<u64>,
    reply: Reply,
    enqueued: Instant,
    /// Shed (with `DeadlineExceeded`) if still undispatched past this.
    deadline: Option<Instant>,
}

/// Mutex-guarded state of the bounded submission queue.
struct QueueInner {
    queue: VecDeque<Request>,
    /// Ops admitted but not yet dispatched or shed. This counts the
    /// executor's coalescing buffer too, so the cap bounds the whole
    /// backlog, not just the channel.
    resident_ops: usize,
    /// No new admissions; the executor drains what is left and exits.
    closed: bool,
    /// The executor is gone; queued requests were dropped unanswered.
    aborted: bool,
}

/// Bounded MPSC submission queue with resident-op accounting.
///
/// `push` admits under the configured cap and policy; the executor `pop`s
/// requests and calls `release` only once ops reach a terminal state
/// (dispatched or shed), so `resident_ops ≤ cap` holds across the whole
/// scheduler, by construction.
struct SubmissionQueue {
    inner: Mutex<QueueInner>,
    /// Producers waiting for resident space.
    admit: Condvar,
    /// The executor waiting for work.
    work: Condvar,
    /// 0 = unbounded.
    cap: usize,
    telemetry: SchedTelemetry,
    rejected_ops: AtomicU64,
    timeout_ops: AtomicU64,
    max_resident_ops: AtomicU64,
}

/// Outcome of one executor [`SubmissionQueue::pop`].
enum Pop {
    /// A request, FIFO.
    Got(Request),
    /// The wake deadline passed with the queue still empty.
    TimedOut,
    /// Closed and fully drained: the executor can exit.
    Closed,
}

impl SubmissionQueue {
    fn new(cap: usize, telemetry: SchedTelemetry) -> Arc<SubmissionQueue> {
        Arc::new(SubmissionQueue {
            inner: Mutex::new(QueueInner {
                queue: VecDeque::new(),
                resident_ops: 0,
                closed: false,
                aborted: false,
            }),
            admit: Condvar::new(),
            work: Condvar::new(),
            cap,
            telemetry,
            rejected_ops: AtomicU64::new(0),
            timeout_ops: AtomicU64::new(0),
            max_resident_ops: AtomicU64::new(0),
        })
    }

    fn lock(&self) -> MutexGuard<'_, QueueInner> {
        self.inner.lock().unwrap_or_else(|p| p.into_inner())
    }

    fn note_rejected(&self, ops: usize) {
        self.rejected_ops.fetch_add(ops as u64, Ordering::Relaxed);
        self.telemetry.incr(names::SCHED_REJECTED, ops as u64);
    }

    /// Admit one request under the cap, or fail per `policy`.
    fn push(&self, req: Request, policy: AdmissionPolicy) -> Result<(), SchedError> {
        let ops = req.keys.len();
        if self.cap > 0 && ops > self.cap {
            // Larger than the whole queue: no amount of waiting helps.
            self.note_rejected(ops);
            return Err(SchedError::QueueFull);
        }
        let wait_until = match policy {
            AdmissionPolicy::BlockWithTimeout(d) => Some(Instant::now() + d),
            _ => None,
        };
        let mut inner = self.lock();
        loop {
            if inner.closed || inner.aborted {
                return Err(SchedError::Shutdown);
            }
            if self.cap == 0 || inner.resident_ops + ops <= self.cap {
                inner.resident_ops = inner.resident_ops.saturating_add(ops);
                self.max_resident_ops
                    .fetch_max(inner.resident_ops as u64, Ordering::Relaxed);
                inner.queue.push_back(req);
                drop(inner);
                self.work.notify_one();
                return Ok(());
            }
            match policy {
                AdmissionPolicy::Reject => {
                    drop(inner);
                    self.note_rejected(ops);
                    return Err(SchedError::QueueFull);
                }
                AdmissionPolicy::Block => {
                    inner = self.admit.wait(inner).unwrap_or_else(|p| p.into_inner());
                }
                AdmissionPolicy::BlockWithTimeout(d) => {
                    // `wait_until` was seeded from this same policy arm
                    // above; recompute rather than unwrap if it is absent.
                    let deadline = wait_until.unwrap_or_else(|| Instant::now() + d);
                    let now = Instant::now();
                    if now >= deadline {
                        drop(inner);
                        self.timeout_ops.fetch_add(ops as u64, Ordering::Relaxed);
                        self.telemetry.incr(names::SCHED_REJECTED, ops as u64);
                        return Err(SchedError::AdmissionTimeout);
                    }
                    inner = match self.admit.wait_timeout(inner, deadline - now) {
                        Ok((g, _)) => g,
                        Err(p) => p.into_inner().0,
                    };
                }
            }
        }
    }

    /// Executor-side pop. Blocks until a request arrives, the optional
    /// `wake` instant passes, or the queue is closed *and* drained.
    fn pop(&self, wake: Option<Instant>) -> Pop {
        let mut inner = self.lock();
        loop {
            if let Some(req) = inner.queue.pop_front() {
                return Pop::Got(req);
            }
            if inner.closed {
                return Pop::Closed;
            }
            match wake {
                None => {
                    inner = self.work.wait(inner).unwrap_or_else(|p| p.into_inner());
                }
                Some(deadline) => {
                    let now = Instant::now();
                    if now >= deadline {
                        return Pop::TimedOut;
                    }
                    inner = match self.work.wait_timeout(inner, deadline - now) {
                        Ok((g, _)) => g,
                        Err(p) => p.into_inner().0,
                    };
                }
            }
        }
    }

    /// Ops reached a terminal state (dispatched or shed): free their
    /// resident slots and wake blocked producers.
    fn release(&self, ops: usize) {
        if ops == 0 {
            return;
        }
        let mut inner = self.lock();
        inner.resident_ops = inner.resident_ops.saturating_sub(ops);
        drop(inner);
        self.admit.notify_all();
    }

    /// Stop admissions; the executor drains the remainder and exits.
    fn close(&self) {
        let mut inner = self.lock();
        inner.closed = true;
        drop(inner);
        self.work.notify_all();
        self.admit.notify_all();
    }

    /// The executor is gone (exit or panic). Drop whatever is still
    /// queued — each dropped `reply` sender fails its producer's `recv`
    /// with [`SchedError::Disconnected`] — and wake every waiter.
    fn abort(&self) {
        let orphans: Vec<Request> = {
            let mut inner = self.lock();
            inner.closed = true;
            inner.aborted = true;
            inner.resident_ops = 0;
            inner.queue.drain(..).collect()
        };
        drop(orphans);
        self.work.notify_all();
        self.admit.notify_all();
    }

    fn is_closed(&self) -> bool {
        self.lock().closed
    }
}

/// Calls [`SubmissionQueue::abort`] when the executor unwinds — panic or
/// normal exit — so producers can never hang on a dead scheduler.
struct AbortGuard(Arc<SubmissionQueue>);

impl Drop for AbortGuard {
    fn drop(&mut self) {
        self.0.abort();
    }
}

/// Counters and model totals accumulated by the executor thread, returned
/// by [`Scheduler::join`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SchedulerStats {
    /// Point operations accepted from clients.
    pub ops_enqueued: u64,
    /// Client calls (requests) answered — served, failed or shed.
    pub requests: u64,
    /// Device batches dispatched to the session.
    pub batches: u64,
    /// Batches dispatched sorted (the locality path).
    pub sorted_batches: u64,
    /// Flushes triggered by reaching the size target.
    pub size_flushes: u64,
    /// Flushes triggered by the oldest op hitting the batch deadline.
    pub deadline_flushes: u64,
    /// Flushes triggered by shutdown with work still queued.
    pub final_flushes: u64,
    /// Keys handed to the session across all batches.
    pub keys_dispatched: u64,
    /// Largest key backlog observed at any flush.
    pub max_queue_depth: u64,
    /// Modeled kernel time across all batches, nanoseconds.
    pub kernel_time_ns: f64,
    /// L2 hits across all batches.
    pub l2_hits: u64,
    /// L2 sector accesses across all batches.
    pub sectors: u64,
    /// DRAM transactions across all batches.
    pub dram_transactions: u64,
    /// Raw per-lane accesses across all batches (pre-coalescing).
    pub raw_accesses: u64,
    /// Batches that failed with a session error.
    pub failed_batches: u64,
    /// Ops shed at coalesce time with [`SchedError::DeadlineExceeded`].
    pub shed_ops: u64,
    /// Ops refused at admission with [`SchedError::QueueFull`].
    pub rejected_ops: u64,
    /// Ops refused with [`SchedError::AdmissionTimeout`].
    pub admission_timeout_ops: u64,
    /// Largest resident-op count ever observed (≤ `queue_cap` when set).
    pub max_resident_ops: u64,
    /// Circuit-breaker trips (`Closed`/`HalfOpen` → `Open`).
    pub breaker_trips: u64,
    /// Half-open probe batches dispatched to the device.
    pub probe_batches: u64,
    /// Batches served wholly from the CPU path while the breaker was open.
    pub breaker_open_batches: u64,
}

impl SchedulerStats {
    /// Mean keys per dispatched batch (0 when no batch ran).
    pub fn mean_batch_fill(&self) -> f64 {
        if self.batches == 0 {
            0.0
        } else {
            self.keys_dispatched as f64 / self.batches as f64
        }
    }

    /// Aggregate L2 hit rate across all batches (1.0 with no traffic).
    pub fn l2_hit_rate(&self) -> f64 {
        if self.sectors == 0 {
            1.0
        } else {
            self.l2_hits as f64 / self.sectors as f64
        }
    }

    /// Modeled kernel nanoseconds per dispatched key (0 when idle).
    pub fn kernel_ns_per_key(&self) -> f64 {
        if self.keys_dispatched == 0 {
            0.0
        } else {
            self.kernel_time_ns / self.keys_dispatched as f64
        }
    }

    fn absorb_report(&mut self, keys: usize, report: &KernelReport) {
        self.batches = self.batches.saturating_add(1);
        self.keys_dispatched = self.keys_dispatched.saturating_add(keys as u64);
        self.kernel_time_ns += report.time_ns; // cuart-allow: arith-overflow f64 accumulator; float addition cannot wrap
        self.l2_hits = self.l2_hits.saturating_add(report.l2_hits);
        self.sectors = self.sectors.saturating_add(report.sectors);
        self.dram_transactions = self
            .dram_transactions
            .saturating_add(report.dram_transactions);
        self.raw_accesses = self.raw_accesses.saturating_add(report.raw_accesses);
    }
}

/// Cloneable producer-side handle. Each call blocks until its batch has
/// executed (or it is refused/shed) and returns results in the caller's
/// submission order.
#[derive(Clone)]
pub struct SchedulerClient {
    queue: Arc<SubmissionQueue>,
    admission: AdmissionPolicy,
    default_deadline: Option<Duration>,
}

impl SchedulerClient {
    fn submit(
        &self,
        kind: OpKind,
        keys: Vec<Vec<u8>>,
        values: Vec<u64>,
        budget: Option<Duration>,
    ) -> Result<Vec<u64>, SchedError> {
        if keys.is_empty() {
            return Ok(Vec::new());
        }
        let now = Instant::now();
        let deadline = budget.or(self.default_deadline).map(|d| now + d);
        // Rendezvous channel: the executor's send never blocks (buffer 1),
        // and a dead executor surfaces as recv's Err.
        let (reply, result) = mpsc::sync_channel(1);
        let req = Request {
            kind,
            keys,
            his: Vec::new(),
            values,
            reply: Reply::Values(reply),
            enqueued: now,
            deadline,
        };
        self.queue.push(req, self.admission)?;
        result.recv().map_err(|_| SchedError::Disconnected)?
    }

    fn submit_range(
        &self,
        ranges: Vec<(Vec<u8>, Vec<u8>)>,
        budget: Option<Duration>,
    ) -> Result<Vec<RangeRows>, SchedError> {
        if ranges.is_empty() {
            return Ok(Vec::new());
        }
        let now = Instant::now();
        let deadline = budget.or(self.default_deadline).map(|d| now + d);
        let (keys, his) = split_ops_keyed(ranges);
        let (reply, result) = mpsc::sync_channel(1);
        let req = Request {
            kind: OpKind::Range,
            keys,
            his,
            values: Vec::new(),
            reply: Reply::Rows(reply),
            enqueued: now,
            deadline,
        };
        self.queue.push(req, self.admission)?;
        result.recv().map_err(|_| SchedError::Disconnected)?
    }

    /// Submit a slice of point lookups; blocks until the batch containing
    /// them executes. Returns one result per key in submission order
    /// ([`NOT_FOUND`](cuart_gpu_sim::batch::NOT_FOUND) for absent keys).
    pub fn lookup(&self, keys: Vec<Vec<u8>>) -> Result<Vec<u64>, SchedError> {
        self.submit(OpKind::Lookup, keys, Vec::new(), None)
    }

    /// [`lookup`](Self::lookup) with an explicit latency budget: if the
    /// request is still waiting for coalescing when the budget expires it
    /// is shed with [`SchedError::DeadlineExceeded`].
    pub fn lookup_with_deadline(
        &self,
        keys: Vec<Vec<u8>>,
        budget: Duration,
    ) -> Result<Vec<u64>, SchedError> {
        self.submit(OpKind::Lookup, keys, Vec::new(), Some(budget))
    }

    /// Submit one point lookup.
    pub fn lookup_one(&self, key: Vec<u8>) -> Result<u64, SchedError> {
        Ok(self.lookup(vec![key])?[0])
    }

    /// Submit point updates (`DELETE` as the value deletes). Returns one
    /// status per op (see [`status`](cuart::update::status)).
    pub fn update(&self, ops: Vec<(Vec<u8>, u64)>) -> Result<Vec<u64>, SchedError> {
        let (keys, values) = split_ops(ops);
        self.submit(OpKind::Update, keys, values, None)
    }

    /// [`update`](Self::update) with an explicit latency budget.
    pub fn update_with_deadline(
        &self,
        ops: Vec<(Vec<u8>, u64)>,
        budget: Duration,
    ) -> Result<Vec<u64>, SchedError> {
        let (keys, values) = split_ops(ops);
        self.submit(OpKind::Update, keys, values, Some(budget))
    }

    /// Submit point inserts. Returns one status per op (see
    /// [`insert_status`](cuart::insert::insert_status)).
    pub fn insert(&self, ops: Vec<(Vec<u8>, u64)>) -> Result<Vec<u64>, SchedError> {
        let (keys, values) = split_ops(ops);
        self.submit(OpKind::Insert, keys, values, None)
    }

    /// [`insert`](Self::insert) with an explicit latency budget.
    pub fn insert_with_deadline(
        &self,
        ops: Vec<(Vec<u8>, u64)>,
        budget: Duration,
    ) -> Result<Vec<u64>, SchedError> {
        let (keys, values) = split_ops(ops);
        self.submit(OpKind::Insert, keys, values, Some(budget))
    }

    /// Submit inclusive range queries. Returns, per `[lo, hi]` pair and in
    /// submission order, every live `(key, value)` row in the range sorted
    /// by key (see [`CuartSession::range_batch`](cuart::CuartSession::range_batch)).
    /// Inverted or empty ranges return empty row lists. Each range counts
    /// as one resident op for admission purposes.
    pub fn range(&self, ranges: Vec<(Vec<u8>, Vec<u8>)>) -> Result<Vec<RangeRows>, SchedError> {
        self.submit_range(ranges, None)
    }

    /// [`range`](Self::range) with an explicit latency budget.
    pub fn range_with_deadline(
        &self,
        ranges: Vec<(Vec<u8>, Vec<u8>)>,
        budget: Duration,
    ) -> Result<Vec<RangeRows>, SchedError> {
        self.submit_range(ranges, Some(budget))
    }
}

fn split_ops(ops: Vec<(Vec<u8>, u64)>) -> (Vec<Vec<u8>>, Vec<u64>) {
    let mut keys = Vec::with_capacity(ops.len());
    let mut values = Vec::with_capacity(ops.len());
    for (k, v) in ops {
        keys.push(k);
        values.push(v);
    }
    (keys, values)
}

fn split_ops_keyed(ops: Vec<(Vec<u8>, Vec<u8>)>) -> (Vec<Vec<u8>>, Vec<Vec<u8>>) {
    let mut los = Vec::with_capacity(ops.len());
    let mut his = Vec::with_capacity(ops.len());
    for (lo, hi) in ops {
        los.push(lo);
        his.push(hi);
    }
    (los, his)
}

/// Owning handle for the executor thread. Dropping it shuts the executor
/// down; [`join`](Scheduler::join) does the same and returns the stats.
pub struct Scheduler {
    queue: Arc<SubmissionQueue>,
    cfg_admission: AdmissionPolicy,
    cfg_op_deadline: Option<Duration>,
    handle: Option<JoinHandle<SchedulerStats>>,
}

impl Scheduler {
    /// Spawn the executor thread. It opens a
    /// [`device_session`](CuartIndex::device_session) on `index` (attaching
    /// `cfg.fault_injector` if present, so the journal covers the session's
    /// whole life) and serves batches until [`join`](Scheduler::join) or
    /// `Drop` shuts it down.
    pub fn spawn(index: Arc<CuartIndex>, dev: DeviceConfig, cfg: SchedulerConfig) -> Scheduler {
        let telemetry = SchedTelemetry::new(index.telemetry().cloned(), cfg.shard);
        let queue = SubmissionQueue::new(cfg.queue_cap, telemetry);
        let cfg_admission = cfg.admission;
        let cfg_op_deadline = cfg.op_deadline;
        let exec_queue = Arc::clone(&queue);
        let handle = std::thread::spawn(move || executor(index, dev, cfg, exec_queue));
        Scheduler {
            queue,
            cfg_admission,
            cfg_op_deadline,
            handle: Some(handle),
        }
    }

    /// A new producer handle. Clients are cheap to clone and `Send`, so
    /// each producer thread can own one. Fails with
    /// [`SchedError::Shutdown`] once the scheduler has been shut down.
    pub fn client(&self) -> Result<SchedulerClient, SchedError> {
        if self.queue.is_closed() {
            return Err(SchedError::Shutdown);
        }
        Ok(SchedulerClient {
            queue: Arc::clone(&self.queue),
            admission: self.cfg_admission,
            default_deadline: self.cfg_op_deadline,
        })
    }

    /// Shut down: close the queue, wait for the executor to drain it, and
    /// return the accumulated [`SchedulerStats`]. Requests admitted before
    /// the close are served (the queue is FIFO); clients that submit
    /// afterwards get [`SchedError::Shutdown`]. An executor panic surfaces
    /// as [`SchedError::ExecutorPanicked`] instead of zeroed stats.
    pub fn join(mut self) -> Result<SchedulerStats, SchedError> {
        self.queue.close();
        match self.handle.take() {
            Some(h) => match h.join() {
                Ok(mut stats) => {
                    self.fold_queue_stats(&mut stats);
                    Ok(stats)
                }
                Err(payload) => Err(SchedError::ExecutorPanicked(panic_message(&payload))),
            },
            None => Err(SchedError::Shutdown),
        }
    }

    /// Admission accounting lives producer-side in the queue; fold it
    /// into the executor's stats at join time, when no producer can still
    /// be mid-call.
    fn fold_queue_stats(&self, stats: &mut SchedulerStats) {
        stats.rejected_ops = self.queue.rejected_ops.load(Ordering::Relaxed);
        stats.admission_timeout_ops = self.queue.timeout_ops.load(Ordering::Relaxed);
        stats.max_resident_ops = self.queue.max_resident_ops.load(Ordering::Relaxed);
    }
}

impl Drop for Scheduler {
    fn drop(&mut self) {
        self.queue.close();
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

/// Render a `JoinHandle::join` panic payload.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "executor thread panicked".to_string()
    }
}

/// Breaker state machine position. Gauge encoding: Closed = 0,
/// HalfOpen = 1, Open = 2 (`cuart.sched.breaker_state`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum BreakerState {
    Closed,
    Open,
    HalfOpen,
}

/// Executor-side circuit breaker over device dispatch.
struct Breaker {
    cfg: BreakerConfig,
    state: BreakerState,
    /// Valid while `Open`: when the cooldown elapses and probing starts.
    open_until: Instant,
    /// Valid while `HalfOpen`: clean probes so far.
    clean_probes: u32,
    consecutive_faults: u32,
    /// Recent modeled batch latencies (ns) for the p99 SLO check.
    window: VecDeque<u64>,
}

impl Breaker {
    fn new(cfg: BreakerConfig) -> Breaker {
        Breaker {
            cfg,
            state: BreakerState::Closed,
            open_until: Instant::now(),
            clean_probes: 0,
            consecutive_faults: 0,
            window: VecDeque::new(),
        }
    }
}

/// p99 of a full latency window (max for windows under 100 entries —
/// deliberately conservative).
fn p99_ns(window: &VecDeque<u64>) -> u64 {
    let mut v: Vec<u64> = window.iter().copied().collect();
    v.sort_unstable();
    let idx = ((v.len() as f64) * 0.99).ceil() as usize;
    v[idx.saturating_sub(1).min(v.len() - 1)]
}

/// How one run is dispatched, per the breaker.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum DispatchMode {
    /// Breaker closed (or absent): normal device dispatch.
    Normal,
    /// Breaker half-open: this run is a recovery probe.
    Probe,
    /// Breaker open: the session is pinned to the CPU path.
    CpuOnly,
}

/// Everything the executor's flush path needs, grouped so the helpers
/// stay under control (and under clippy's argument limit).
struct ExecCtx<'a> {
    session: cuart::CuartSession<'a>,
    cfg: &'a SchedulerConfig,
    queue: &'a SubmissionQueue,
    telemetry: SchedTelemetry,
    stats: SchedulerStats,
    breaker: Option<Breaker>,
}

/// The executor loop: block for work, coalesce, shed expired ops, flush
/// on size / deadline / shutdown.
fn executor(
    index: Arc<CuartIndex>,
    dev: DeviceConfig,
    cfg: SchedulerConfig,
    queue: Arc<SubmissionQueue>,
) -> SchedulerStats {
    // Producers must never hang on a dead executor: on any exit from this
    // frame — including a panic — the queue is aborted, which drops the
    // orphaned reply channels and wakes blocked admissions.
    let _abort = AbortGuard(Arc::clone(&queue));
    let telemetry = SchedTelemetry::new(index.telemetry().cloned(), cfg.shard);
    let mut session = index.device_session(&dev);
    // The scheduler records the full `sched.batch.*` tree around each
    // device leg (queueing, sort, scatter and the leg itself); the
    // session's own `batch.*` trees would double-count it.
    session.set_span_recording(false);
    if let Some(injector) = cfg.fault_injector.clone() {
        session.attach_fault_injector(injector);
    }
    // Shadowing guarantees the journal holds every device mutation made
    // through this scheduler: a breaker trip pins the session to the CPU
    // path (even a latency-SLO trip with no injector), and `range_batch`'s
    // host-side merge reads the journal overlay — both need it on from
    // the first mutating batch.
    session.set_journal_shadowing(true);
    if cfg.breaker.is_some() {
        telemetry.gauge_set(names::SCHED_BREAKER_STATE, 0.0);
    }
    let batch_target = cfg.batch_target.max(1);
    let breaker = cfg.breaker.clone().map(Breaker::new);
    let mut ctx = ExecCtx {
        session,
        cfg: &cfg,
        queue: &queue,
        telemetry,
        stats: SchedulerStats::default(),
        breaker,
    };

    let mut pending: VecDeque<Request> = VecDeque::new();
    let mut pending_keys = 0usize;

    loop {
        // Wake at the earlier of the batch deadline (oldest op + deadline)
        // and the earliest per-op deadline; sleep unbounded when idle.
        let wake = if let Some(front) = pending.front() {
            let mut at = front.enqueued + ctx.cfg.deadline;
            for r in &pending {
                if let Some(d) = r.deadline {
                    at = at.min(d);
                }
            }
            Some(at)
        } else {
            None
        };

        match queue.pop(wake) {
            Pop::Got(req) => {
                ctx.stats.ops_enqueued =
                    ctx.stats.ops_enqueued.saturating_add(req.keys.len() as u64);
                ctx.telemetry
                    .incr(names::SCHED_ENQUEUED, req.keys.len() as u64);
                pending_keys = pending_keys.saturating_add(req.keys.len());
                pending.push_back(req);
                if pending_keys >= batch_target {
                    let depth = pending_keys as u64;
                    ctx.flush(&mut pending, &mut pending_keys);
                    ctx.stats.size_flushes += 1;
                    record_flush(&ctx.telemetry, Some(names::SCHED_SIZE_FLUSHES), depth);
                }
            }
            Pop::TimedOut => {
                // Either an op deadline expired (shed it, keep waiting) or
                // the oldest op aged past the batch deadline (flush).
                ctx.shed_expired(&mut pending, &mut pending_keys, Instant::now());
                let batch_due = pending
                    .front()
                    .is_some_and(|r| r.enqueued.elapsed() >= ctx.cfg.deadline);
                if batch_due {
                    let depth = pending_keys as u64;
                    ctx.flush(&mut pending, &mut pending_keys);
                    ctx.stats.deadline_flushes += 1;
                    record_flush(&ctx.telemetry, Some(names::SCHED_DEADLINE_FLUSHES), depth);
                }
            }
            Pop::Closed => {
                if !pending.is_empty() {
                    let depth = pending_keys as u64;
                    ctx.flush(&mut pending, &mut pending_keys);
                    ctx.stats.final_flushes += 1;
                    record_flush(&ctx.telemetry, None, depth);
                }
                break;
            }
        }
    }
    ctx.stats
}

/// Telemetry bookkeeping for one flush (optional counter + queue-depth
/// gauge recording the backlog the flush drained).
fn record_flush(telemetry: &SchedTelemetry, counter: Option<&'static str>, depth: u64) {
    if let Some(c) = counter {
        telemetry.incr(c, 1);
    }
    telemetry.gauge_set(names::SCHED_QUEUE_DEPTH, depth as f64);
}

/// Modeled host cost of packing one key into the coalesced batch buffer.
const COALESCE_NS_PER_KEY: u64 = 4;
/// Modeled host cost per key·log2(n) of the stable batch sort (§3.2).
const SORT_NS_PER_KEY_LOG: u64 = 8;
/// Modeled host cost of scattering one result back to its caller's order.
const SCATTER_NS_PER_KEY: u64 = 4;
/// Modeled host cost of answering one shed op with `DeadlineExceeded`.
const SHED_NS_PER_OP: u64 = 2;

impl ExecCtx<'_> {
    /// Shed every pending request whose deadline has passed: reply
    /// `DeadlineExceeded`, free its resident slots, count and trace it.
    /// Runs at coalesce time — before sorting and dispatch — so late work
    /// never consumes device time.
    fn shed_expired(
        &mut self,
        pending: &mut VecDeque<Request>,
        pending_keys: &mut usize,
        now: Instant,
    ) {
        if pending.is_empty() {
            return;
        }
        let mut shed_ops = 0usize;
        let mut shed_requests = 0u64;
        let mut kept: VecDeque<Request> = VecDeque::with_capacity(pending.len());
        while let Some(req) = pending.pop_front() {
            if req.deadline.is_some_and(|d| d <= now) {
                shed_ops = shed_ops.saturating_add(req.keys.len());
                shed_requests = shed_requests.saturating_add(1);
                req.reply.send_err(SchedError::DeadlineExceeded);
            } else {
                kept.push_back(req);
            }
        }
        *pending = kept;
        if shed_ops == 0 {
            return;
        }
        *pending_keys = pending_keys.saturating_sub(shed_ops);
        self.stats.shed_ops = self.stats.shed_ops.saturating_add(shed_ops as u64);
        self.stats.requests += shed_requests;
        self.queue.release(shed_ops);
        self.telemetry.incr(names::SCHED_SHED, shed_ops as u64);
        if let Some(t) = self.telemetry.raw() {
            // Not a `sched.batch.*` root: shed work has no device leg, so
            // the leaf-sum invariant the trace verifier enforces on batch
            // roots does not apply.
            let span = SpanNode::leaf(names::spans::SCHED_SHED, SHED_NS_PER_OP * shed_ops as u64)
                .with_attr("ops", shed_ops);
            t.record_span_tree(&span);
        }
    }

    /// Drain the whole pending queue: shed expired ops, then execute the
    /// remainder as maximal same-kind head runs, each run one device
    /// batch.
    fn flush(&mut self, pending: &mut VecDeque<Request>, pending_keys: &mut usize) {
        self.stats.max_queue_depth = self.stats.max_queue_depth.max(*pending_keys as u64);
        self.shed_expired(pending, pending_keys, Instant::now());
        while let Some(front) = pending.front() {
            let kind = front.kind;
            let mut run: Vec<Request> = Vec::new();
            while pending.front().is_some_and(|r| r.kind == kind) {
                if let Some(r) = pending.pop_front() {
                    run.push(r);
                }
            }
            self.execute_run(kind, run);
        }
        *pending_keys = 0;
    }

    /// Execute one same-kind run as a single (optionally sorted) device
    /// batch and reply to every request in it.
    fn execute_run(&mut self, kind: OpKind, run: Vec<Request>) {
        if kind == OpKind::Range {
            return self.execute_range_run(run);
        }
        // Concatenate the run into one batch, remembering per-request
        // extents.
        let total: usize = run.iter().map(|r| r.keys.len()).sum();
        let mut keys: Vec<Vec<u8>> = Vec::with_capacity(total);
        let mut values: Vec<u64> = Vec::with_capacity(total);
        let mut extents: Vec<usize> = Vec::with_capacity(run.len());
        let oldest = run.iter().map(|r| r.enqueued).min();
        for r in &run {
            extents.push(r.keys.len());
            keys.extend(r.keys.iter().cloned());
            values.extend(r.values.iter().cloned());
        }

        // Sorted-batch composition: stable sort keeps duplicate keys in
        // submission order, so kernel-side "highest tid wins" still
        // resolves to the latest submitted op.
        let perm = if self.cfg.sort_batches && total > 1 {
            let p = sort_permutation(&keys);
            keys = gather(&keys, &p);
            if !values.is_empty() {
                values = gather(&values, &p);
            }
            Some(p)
        } else {
            None
        };

        let mode = self.breaker_before(total as u64);
        if mode == DispatchMode::Probe {
            self.stats.probe_batches = self.stats.probe_batches.saturating_add(1);
            self.telemetry.incr(names::SCHED_PROBE_BATCHES, 1);
        } else if mode == DispatchMode::CpuOnly {
            self.stats.breaker_open_batches = self.stats.breaker_open_batches.saturating_add(1);
        }
        let injected_before = self.session.fault_stats().injected;

        let outcome = match kind {
            OpKind::Lookup => self.session.lookup_batch(&keys),
            OpKind::Update => {
                let ops: Vec<(Vec<u8>, u64)> = keys.into_iter().zip(values).collect();
                self.session.update_batch(&ops)
            }
            OpKind::Insert => {
                let ops: Vec<(Vec<u8>, u64)> = keys.into_iter().zip(values).collect();
                self.session.insert_batch(&ops)
            }
            // Dispatched to execute_range_run above; kept panic-free.
            OpKind::Range => Err(CuartError::Internal {
                detail: "range run reached the point-op path".into(),
            }),
        };
        let injected_delta = self
            .session
            .fault_stats()
            .injected
            .saturating_sub(injected_before);

        match outcome {
            Ok((batch_results, report)) => {
                self.stats.absorb_report(total, &report);
                if perm.is_some() {
                    self.stats.sorted_batches = self.stats.sorted_batches.saturating_add(1);
                }
                let results = match &perm {
                    Some(p) => scatter_inverse(&batch_results, p),
                    None => batch_results,
                };
                self.telemetry.incr(names::SCHED_BATCHES, 1);
                if perm.is_some() {
                    self.telemetry.incr(names::SCHED_SORTED_BATCHES, 1);
                }
                if let Some(t) = self.telemetry.raw() {
                    t.observe(names::SCHED_BATCH_FILL, total as u64);
                    if let Some(start) = oldest {
                        t.observe(
                            names::SCHED_QUEUE_LATENCY_NS,
                            start.elapsed().as_nanos() as u64,
                        );
                    }
                    record_sched_span(
                        &self.session,
                        t,
                        kind,
                        total,
                        perm.is_some(),
                        mode == DispatchMode::Probe,
                        &report,
                    );
                }
                // Slice results back out per request, in FIFO order.
                let mut off = 0usize;
                for (req, len) in run.into_iter().zip(extents) {
                    self.stats.requests += 1;
                    let slice = results[off..off + len].to_vec();
                    off += len;
                    if let Reply::Values(s) = &req.reply {
                        let _ = s.send(Ok(slice));
                    }
                }
                if mode != DispatchMode::CpuOnly {
                    self.breaker_after(injected_delta > 0, report.time_ns, total as u64);
                }
            }
            Err(e) => {
                self.stats.failed_batches = self.stats.failed_batches.saturating_add(1);
                let err = SchedError::from(&e);
                for req in run {
                    self.stats.requests += 1;
                    req.reply.send_err(err.clone());
                }
                if mode != DispatchMode::CpuOnly {
                    self.breaker_after(true, 0.0, total as u64);
                }
            }
        }
        self.queue.release(total);
    }

    /// Execute one run of range requests as a single device batch. Ranges
    /// are never sorted — each request's `[lo, hi]` pairs keep arrival
    /// order, and rows come back sorted per range by construction.
    fn execute_range_run(&mut self, run: Vec<Request>) {
        let total: usize = run.iter().map(|r| r.keys.len()).sum();
        let mut ranges: Vec<(Vec<u8>, Vec<u8>)> = Vec::with_capacity(total);
        let mut extents: Vec<usize> = Vec::with_capacity(run.len());
        let oldest = run.iter().map(|r| r.enqueued).min();
        for r in &run {
            extents.push(r.keys.len());
            for (lo, hi) in r.keys.iter().zip(&r.his) {
                ranges.push((lo.clone(), hi.clone()));
            }
        }

        let mode = self.breaker_before(total as u64);
        if mode == DispatchMode::Probe {
            self.stats.probe_batches = self.stats.probe_batches.saturating_add(1);
            self.telemetry.incr(names::SCHED_PROBE_BATCHES, 1);
        } else if mode == DispatchMode::CpuOnly {
            self.stats.breaker_open_batches = self.stats.breaker_open_batches.saturating_add(1);
        }
        let injected_before = self.session.fault_stats().injected;

        let outcome = self.session.range_batch(&ranges);
        let injected_delta = self
            .session
            .fault_stats()
            .injected
            .saturating_sub(injected_before);

        match outcome {
            Ok((rows, report)) => {
                self.stats.absorb_report(total, &report);
                self.telemetry.incr(names::SCHED_BATCHES, 1);
                if let Some(t) = self.telemetry.raw() {
                    t.observe(names::SCHED_BATCH_FILL, total as u64);
                    if let Some(start) = oldest {
                        t.observe(
                            names::SCHED_QUEUE_LATENCY_NS,
                            start.elapsed().as_nanos() as u64,
                        );
                    }
                    record_sched_span(
                        &self.session,
                        t,
                        OpKind::Range,
                        total,
                        false,
                        mode == DispatchMode::Probe,
                        &report,
                    );
                }
                let mut off = 0usize;
                for (req, len) in run.into_iter().zip(extents) {
                    self.stats.requests += 1;
                    let slice = rows[off..off + len].to_vec();
                    off += len;
                    if let Reply::Rows(s) = &req.reply {
                        let _ = s.send(Ok(slice));
                    }
                }
                if mode != DispatchMode::CpuOnly {
                    self.breaker_after(injected_delta > 0, report.time_ns, total as u64);
                }
            }
            Err(e) => {
                self.stats.failed_batches = self.stats.failed_batches.saturating_add(1);
                let err = SchedError::from(&e);
                for req in run {
                    self.stats.requests += 1;
                    req.reply.send_err(err.clone());
                }
                if mode != DispatchMode::CpuOnly {
                    self.breaker_after(true, 0.0, total as u64);
                }
            }
        }
        self.queue.release(total);
    }

    /// Breaker step before dispatching a run: decide the dispatch mode,
    /// performing the timed `Open` → `HalfOpen` transition (unpin the
    /// session so probe batches reach the device).
    fn breaker_before(&mut self, run_keys: u64) -> DispatchMode {
        let Some(b) = self.breaker.as_mut() else {
            return DispatchMode::Normal;
        };
        match b.state {
            BreakerState::Closed => DispatchMode::Normal,
            BreakerState::HalfOpen => DispatchMode::Probe,
            BreakerState::Open => {
                if Instant::now() < b.open_until {
                    return DispatchMode::CpuOnly;
                }
                b.state = BreakerState::HalfOpen;
                b.clean_probes = 0;
                self.session.set_cpu_only(false);
                self.telemetry.gauge_set(names::SCHED_BREAKER_STATE, 1.0);
                if let Some(t) = self.telemetry.raw() {
                    t.record(BatchEvent::new(BatchKind::BreakerHalfOpen, run_keys));
                }
                DispatchMode::Probe
            }
        }
    }

    /// Breaker step after a `Closed` or `HalfOpen` dispatch. `faulty`
    /// means the batch errored or any fault was injected while serving it
    /// (covering retried-then-recovered legs and silent degradations).
    fn breaker_after(&mut self, faulty: bool, time_ns: f64, run_keys: u64) {
        #[derive(PartialEq)]
        enum Verdict {
            Nothing,
            Trip,
            Close,
        }
        let verdict = {
            let Some(b) = self.breaker.as_mut() else {
                return;
            };
            match b.state {
                BreakerState::Open => Verdict::Nothing,
                BreakerState::Closed => {
                    if faulty {
                        b.consecutive_faults += 1;
                    } else {
                        b.consecutive_faults = 0;
                    }
                    let mut trip =
                        b.cfg.fault_threshold > 0 && b.consecutive_faults >= b.cfg.fault_threshold;
                    if let (Some(slo), true) = (b.cfg.latency_slo_ns, time_ns > 0.0) {
                        b.window.push_back(time_ns as u64);
                        while b.window.len() > b.cfg.latency_window.max(1) {
                            b.window.pop_front();
                        }
                        if b.window.len() >= b.cfg.latency_window.max(1)
                            && p99_ns(&b.window) as f64 > slo
                        {
                            trip = true;
                        }
                    }
                    if trip {
                        Verdict::Trip
                    } else {
                        Verdict::Nothing
                    }
                }
                BreakerState::HalfOpen => {
                    if faulty {
                        Verdict::Trip
                    } else {
                        b.clean_probes += 1;
                        if b.clean_probes >= b.cfg.probe_batches.max(1) {
                            Verdict::Close
                        } else {
                            Verdict::Nothing
                        }
                    }
                }
            }
        };
        match verdict {
            Verdict::Trip => self.trip_breaker(run_keys),
            Verdict::Close => self.close_breaker(run_keys),
            Verdict::Nothing => {}
        }
    }

    /// `Closed`/`HalfOpen` → `Open`: pin the session to the authoritative
    /// CPU path for the cooldown window.
    fn trip_breaker(&mut self, run_keys: u64) {
        let Some(b) = self.breaker.as_mut() else {
            return;
        };
        b.state = BreakerState::Open;
        b.open_until = Instant::now() + b.cfg.open_cooldown;
        b.consecutive_faults = 0;
        b.clean_probes = 0;
        b.window.clear();
        self.stats.breaker_trips = self.stats.breaker_trips.saturating_add(1);
        self.session.set_cpu_only(true);
        self.telemetry.incr(names::SCHED_BREAKER_TRIPS, 1);
        self.telemetry.gauge_set(names::SCHED_BREAKER_STATE, 2.0);
        if let Some(t) = self.telemetry.raw() {
            t.record(BatchEvent::new(BatchKind::BreakerOpen, run_keys));
        }
    }

    /// `HalfOpen` → `Closed` after enough clean probes.
    fn close_breaker(&mut self, run_keys: u64) {
        if let Some(b) = self.breaker.as_mut() {
            b.state = BreakerState::Closed;
            b.consecutive_faults = 0;
            b.clean_probes = 0;
            b.window.clear();
        }
        self.telemetry.gauge_set(names::SCHED_BREAKER_STATE, 0.0);
        if let Some(t) = self.telemetry.raw() {
            t.record(BatchEvent::new(BatchKind::BreakerClosed, run_keys));
        }
    }
}

/// Commit the `sched.batch.<kind>` span tree for one dispatched run:
/// host-side coalesce / sort / scatter (modeled constants above), the
/// PCIe legs, the launch overhead and the kernel's `dram`/`exec`
/// decomposition. All children are sequential, so the leaf durations sum
/// to the root — the batch's modeled end-to-end time.
fn record_sched_span(
    session: &cuart::CuartSession<'_>,
    t: &Telemetry,
    kind: OpKind,
    total: usize,
    sorted: bool,
    probe: bool,
    report: &KernelReport,
) {
    if report.time_ns <= 0.0 || total == 0 {
        return;
    }
    let dev = session.device();
    let n = total as u64;
    // Bit length of n: a cheap, deterministic ⌈log2⌉ stand-in.
    let log2n = (u64::BITS - n.leading_zeros()).max(1) as u64;
    // Ranges ship packed [lo, hi] records up and per-class span pairs
    // down; point ops ship stride-packed keys up and one u64 down.
    let (up_stride, down_stride) = match kind {
        OpKind::Range => (
            cuart::range::RANGE_RECORD_BYTES,
            cuart::range::RANGE_RESULT_BYTES,
        ),
        _ => (session.device_key_stride(), 8),
    };
    let up = cuart_gpu_sim::pcie::upload(&dev.pcie, total, up_stride);
    let down = cuart_gpu_sim::pcie::download(&dev.pcie, total, down_stride);
    use names::spans;
    let mut children = vec![SpanNode::leaf(spans::COALESCE, COALESCE_NS_PER_KEY * n)];
    if sorted {
        children.push(SpanNode::leaf(spans::SORT, SORT_NS_PER_KEY_LOG * n * log2n));
    }
    children.push(SpanNode::leaf(spans::H2D, up.time_ns as u64).with_attr("bytes", up.bytes));
    children.push(SpanNode::leaf(
        spans::LAUNCH,
        (dev.launch_overhead_us * 1_000.0) as u64,
    ));
    children.push(report.to_span());
    children.push(SpanNode::leaf(spans::D2H, down.time_ns as u64).with_attr("bytes", down.bytes));
    if sorted {
        children.push(SpanNode::leaf(spans::SCATTER, SCATTER_NS_PER_KEY * n));
    }
    let name = match kind {
        OpKind::Lookup => spans::SCHED_BATCH_LOOKUP,
        OpKind::Update => spans::SCHED_BATCH_UPDATE,
        OpKind::Insert => spans::SCHED_BATCH_INSERT,
        OpKind::Range => spans::SCHED_BATCH_RANGE,
    };
    let mut root = SpanNode::node(name, children)
        .with_attr("keys", total)
        .with_attr("sorted", sorted);
    if probe {
        root = root.with_attr("probe", true);
    }
    t.record_span_tree(&root);
}

#[cfg(test)]
mod tests {
    use super::*;
    use cuart::{CuartConfig, CuartIndex};
    use cuart_art::Art;
    use cuart_gpu_sim::batch::NOT_FOUND;
    use cuart_gpu_sim::devices;

    fn build_index(n: u64) -> Arc<CuartIndex> {
        let mut art = Art::new();
        for i in 0..n {
            art.insert(&i.to_be_bytes(), i * 10).unwrap();
        }
        // Small LUT: every test spawns at least one scheduler, and each
        // spawn opens a device session that uploads the LUT.
        Arc::new(CuartIndex::build(&art, &CuartConfig::for_tests()))
    }

    fn spawn(index: &Arc<CuartIndex>, cfg: SchedulerConfig) -> Scheduler {
        Scheduler::spawn(Arc::clone(index), devices::gtx1070(), cfg)
    }

    fn key(i: u64) -> Vec<u8> {
        i.to_be_bytes().to_vec()
    }

    #[test]
    fn single_client_lookup_roundtrip() {
        let index = build_index(256);
        let sched = spawn(&index, SchedulerConfig::default());
        let client = sched.client().unwrap();
        let keys: Vec<Vec<u8>> = (0..64u64).map(key).collect();
        let results = client.lookup(keys).unwrap();
        for (i, r) in results.iter().enumerate() {
            assert_eq!(*r, i as u64 * 10);
        }
        assert_eq!(client.lookup_one(key(9999)), Ok(NOT_FOUND));
        drop(client);
        let stats = sched.join().unwrap();
        assert_eq!(stats.ops_enqueued, 65);
        assert_eq!(stats.requests, 2);
        assert!(stats.batches >= 1);
        assert_eq!(stats.keys_dispatched, 65);
    }

    #[test]
    fn empty_request_answers_without_executor_roundtrip() {
        let index = build_index(8);
        let sched = spawn(&index, SchedulerConfig::default());
        let client = sched.client().unwrap();
        assert_eq!(client.lookup(Vec::new()), Ok(Vec::new()));
        assert_eq!(client.range(Vec::new()), Ok(Vec::new()));
        drop(client);
        assert_eq!(sched.join().unwrap().requests, 0);
    }

    #[test]
    fn range_roundtrip_matches_host_reference_and_sees_updates() {
        let index = build_index(512);
        let sched = spawn(&index, SchedulerConfig::default());
        let client = sched.client().unwrap();
        // A device-side mutation before the range: journal shadowing is
        // unconditional in the executor, so the range must see it.
        client.update(vec![(key(20), 777)]).unwrap();
        let rows = client
            .range(vec![
                (key(10), key(25)),
                (key(30), key(30)),
                (key(25), key(10)), // inverted → empty
            ])
            .unwrap();
        assert_eq!(rows.len(), 3);
        let want: Vec<(Vec<u8>, u64)> = (10..=25u64)
            .map(|i| (key(i), if i == 20 { 777 } else { i * 10 }))
            .collect();
        assert_eq!(rows[0], want);
        assert_eq!(rows[1], vec![(key(30), 300)]);
        assert!(rows[2].is_empty());
        drop(client);
        let stats = sched.join().unwrap();
        // 1 update op + 3 range ops went through the queue.
        assert_eq!(stats.ops_enqueued, 4);
        assert_eq!(stats.requests, 2);
    }

    #[test]
    fn range_with_zero_budget_is_shed() {
        let index = build_index(64);
        let cfg = SchedulerConfig {
            batch_target: 1_000_000,
            deadline: Duration::from_millis(50),
            ..SchedulerConfig::default()
        };
        let sched = spawn(&index, cfg);
        let client = sched.client().unwrap();
        let got = client.range_with_deadline(vec![(key(0), key(9))], Duration::ZERO);
        assert_eq!(got, Err(SchedError::DeadlineExceeded));
        drop(client);
        let stats = sched.join().unwrap();
        assert_eq!(stats.shed_ops, 1);
    }

    #[test]
    fn size_flush_triggers_at_target() {
        let index = build_index(512);
        let cfg = SchedulerConfig {
            batch_target: 32,
            deadline: Duration::from_secs(3600), // never
            ..SchedulerConfig::default()
        };
        let sched = spawn(&index, cfg);
        // Two producers, each submitting 32 keys: both requests can only
        // complete via size flushes (the deadline is an hour away).
        let mut handles = Vec::new();
        for p in 0..2u64 {
            let client = sched.client().unwrap();
            handles.push(std::thread::spawn(move || {
                let keys: Vec<Vec<u8>> = (p * 32..p * 32 + 32).map(key).collect();
                client.lookup(keys).unwrap()
            }));
        }
        for (p, h) in handles.into_iter().enumerate() {
            let results = h.join().unwrap();
            for (i, r) in results.iter().enumerate() {
                assert_eq!(*r, (p as u64 * 32 + i as u64) * 10);
            }
        }
        let stats = sched.join().unwrap();
        assert!(stats.size_flushes >= 1, "expected a size flush: {stats:?}");
        assert_eq!(stats.deadline_flushes, 0);
        assert_eq!(stats.keys_dispatched, 64);
    }

    #[test]
    fn deadline_flush_serves_underfilled_batches() {
        let index = build_index(64);
        let cfg = SchedulerConfig {
            batch_target: 1_000_000, // size target unreachable
            deadline: Duration::from_millis(2),
            ..SchedulerConfig::default()
        };
        let sched = spawn(&index, cfg);
        let client = sched.client().unwrap();
        let r = client.lookup_one(key(7)).unwrap();
        assert_eq!(r, 70);
        drop(client);
        let stats = sched.join().unwrap();
        assert!(
            stats.deadline_flushes + stats.final_flushes >= 1,
            "an underfilled batch must flush on deadline or shutdown: {stats:?}"
        );
        assert_eq!(stats.size_flushes, 0);
    }

    #[test]
    fn updates_then_lookups_preserve_order() {
        let index = build_index(128);
        let cfg = SchedulerConfig {
            batch_target: 1_000_000,
            deadline: Duration::from_millis(300),
            ..SchedulerConfig::default()
        };
        let sched = spawn(&index, cfg);
        let client = sched.client().unwrap();
        // Update then read the same key. FIFO + head-run batching
        // guarantees the update batch executes before the lookup batch
        // even though both wait in the same deadline flush.
        let k = key(42);
        let c2 = client.clone();
        let k2 = k.clone();
        let upd = std::thread::spawn(move || c2.update(vec![(k2, 4242)]).unwrap());
        // Generous head start: the update must be queued well before the
        // lookup, and the 300 ms deadline keeps both in one flush.
        std::thread::sleep(Duration::from_millis(100));
        let looked = client.lookup(vec![k]).unwrap();
        let statuses = upd.join().unwrap();
        assert_eq!(statuses.len(), 1);
        assert_eq!(looked, vec![4242]);
        drop(client);
        let stats = sched.join().unwrap();
        // Two kinds in one flush → at least two batches (head runs).
        assert!(stats.batches >= 2, "head runs split by kind: {stats:?}");
    }

    #[test]
    fn duplicate_update_keys_keep_last_write_wins_when_sorted() {
        let index = build_index(64);
        let cfg = SchedulerConfig {
            batch_target: 1_000_000,
            deadline: Duration::from_millis(5),
            sort_batches: true,
            ..SchedulerConfig::default()
        };
        let sched = spawn(&index, cfg);
        let client = sched.client().unwrap();
        let k = key(5);
        // One request with the same key twice: sorted packing is stable,
        // so the second (later) op must win.
        client
            .update(vec![(k.clone(), 111), (k.clone(), 222)])
            .unwrap();
        assert_eq!(client.lookup_one(k).unwrap(), 222);
        drop(client);
        sched.join().unwrap();
    }

    #[test]
    fn inserts_flow_through_the_scheduler() {
        let index = build_index(64);
        let sched = spawn(&index, SchedulerConfig::default());
        let client = sched.client().unwrap();
        let k = key(1_000_000);
        assert_eq!(client.lookup_one(k.clone()).unwrap(), NOT_FOUND);
        let statuses = client.insert(vec![(k.clone(), 777)]).unwrap();
        assert_eq!(statuses.len(), 1);
        assert_eq!(client.lookup_one(k).unwrap(), 777);
        drop(client);
        sched.join().unwrap();
    }

    #[test]
    fn oversized_keys_do_not_poison_a_sorted_batch() {
        let index = build_index(64);
        let sched = spawn(&index, SchedulerConfig::default());
        let client = sched.client().unwrap();
        // A 300-byte key cannot be packed at any device stride; the
        // session answers NOT_FOUND without panicking, and the short key
        // in the same request still resolves.
        let results = client.lookup(vec![vec![0xAB; 300], key(3)]).unwrap();
        assert_eq!(results, vec![NOT_FOUND, 30]);
        drop(client);
        sched.join().unwrap();
    }

    #[test]
    fn submit_after_join_yields_clean_shutdown() {
        let index = build_index(8);
        let sched = spawn(&index, SchedulerConfig::default());
        let client = sched.client().unwrap();
        sched.join().unwrap();
        assert_eq!(client.lookup_one(vec![1, 2, 3]), Err(SchedError::Shutdown));
    }

    #[test]
    fn multi_producer_results_match_cpu_reference() {
        let index = build_index(1024);
        let cfg = SchedulerConfig {
            batch_target: 256,
            deadline: Duration::from_micros(500),
            ..SchedulerConfig::default()
        };
        let sched = spawn(&index, cfg);
        let producers = 4;
        let per = 512u64;
        let mut handles = Vec::new();
        for p in 0..producers {
            let client = sched.client().unwrap();
            let index = Arc::clone(&index);
            handles.push(std::thread::spawn(move || {
                // Shuffled-ish stride pattern so producers interleave keys.
                let keys: Vec<Vec<u8>> = (0..per)
                    .map(|i| ((i * 37 + p * 13) % 2048).to_be_bytes().to_vec())
                    .collect();
                let expect: Vec<u64> = index
                    .lookup_batch_cpu(&keys)
                    .into_iter()
                    .map(|r| r.unwrap_or(NOT_FOUND))
                    .collect();
                let got = client.lookup(keys).unwrap();
                assert_eq!(got, expect);
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let stats = sched.join().unwrap();
        assert_eq!(stats.ops_enqueued, producers * per);
        assert_eq!(stats.keys_dispatched, producers * per);
        assert!(stats.sorted_batches >= 1);
    }

    #[test]
    fn reject_policy_fails_fast_when_queue_is_full() {
        let index = build_index(64);
        let cfg = SchedulerConfig {
            batch_target: 1_000_000,
            deadline: Duration::from_millis(200),
            queue_cap: 4,
            admission: AdmissionPolicy::Reject,
            ..SchedulerConfig::default()
        };
        let sched = spawn(&index, cfg);
        // Fill the cap from one thread (it blocks on its reply until the
        // 200 ms deadline flush)…
        let filler = sched.client().unwrap();
        let fill = std::thread::spawn(move || filler.lookup((0..4u64).map(key).collect()));
        std::thread::sleep(Duration::from_millis(50));
        // …then a second producer must be refused immediately.
        let client = sched.client().unwrap();
        assert_eq!(client.lookup(vec![key(1)]), Err(SchedError::QueueFull));
        // A single request larger than the whole cap can never be
        // admitted, under any policy.
        assert_eq!(
            client.lookup((0..5u64).map(key).collect()),
            Err(SchedError::QueueFull)
        );
        let served = fill.join().unwrap().unwrap();
        assert_eq!(served.len(), 4);
        drop(client);
        let stats = sched.join().unwrap();
        assert_eq!(stats.rejected_ops, 6);
        assert!(stats.max_resident_ops <= 4, "{stats:?}");
    }

    #[test]
    fn block_with_timeout_surfaces_admission_timeout() {
        let index = build_index(64);
        let cfg = SchedulerConfig {
            batch_target: 1_000_000,
            deadline: Duration::from_millis(300),
            queue_cap: 4,
            admission: AdmissionPolicy::BlockWithTimeout(Duration::from_millis(10)),
            ..SchedulerConfig::default()
        };
        let sched = spawn(&index, cfg);
        let filler = sched.client().unwrap();
        let fill = std::thread::spawn(move || filler.lookup((0..4u64).map(key).collect()));
        std::thread::sleep(Duration::from_millis(50));
        let client = sched.client().unwrap();
        let t0 = Instant::now();
        assert_eq!(
            client.lookup(vec![key(1)]),
            Err(SchedError::AdmissionTimeout)
        );
        assert!(
            t0.elapsed() >= Duration::from_millis(10),
            "the timeout budget must elapse before failing"
        );
        fill.join().unwrap().unwrap();
        drop(client);
        let stats = sched.join().unwrap();
        assert_eq!(stats.admission_timeout_ops, 1);
    }

    #[test]
    fn block_policy_bounds_resident_ops_and_loses_nothing() {
        let index = build_index(256);
        let cfg = SchedulerConfig {
            batch_target: 1_000_000,
            deadline: Duration::from_millis(20),
            queue_cap: 8,
            admission: AdmissionPolicy::Block,
            ..SchedulerConfig::default()
        };
        let sched = spawn(&index, cfg);
        // 16 ops against a cap of 8: half the producers must block at
        // admission and be admitted after a flush releases their slots.
        let mut handles = Vec::new();
        for p in 0..4u64 {
            let client = sched.client().unwrap();
            handles.push(std::thread::spawn(move || {
                client
                    .lookup((p * 4..p * 4 + 4).map(key).collect())
                    .unwrap()
            }));
        }
        for h in handles {
            assert_eq!(h.join().unwrap().len(), 4);
        }
        let stats = sched.join().unwrap();
        assert_eq!(stats.ops_enqueued, 16);
        assert_eq!(stats.keys_dispatched, 16);
        assert!(
            stats.max_resident_ops <= 8,
            "resident ops must never exceed the cap: {stats:?}"
        );
    }

    #[test]
    fn per_op_deadline_sheds_before_dispatch() {
        let index = build_index(64);
        let cfg = SchedulerConfig {
            batch_target: 1_000_000,
            deadline: Duration::from_secs(30), // batch deadline unreachable
            ..SchedulerConfig::default()
        };
        let sched = spawn(&index, cfg);
        let client = sched.client().unwrap();
        // The call returns in milliseconds even though the batch deadline
        // is half a minute away: only the op-deadline shed can answer it.
        assert_eq!(
            client.lookup_with_deadline(vec![key(1)], Duration::from_millis(5)),
            Err(SchedError::DeadlineExceeded)
        );
        drop(client);
        let stats = sched.join().unwrap();
        assert_eq!(stats.shed_ops, 1);
        assert_eq!(stats.keys_dispatched, 0);
        assert_eq!(stats.deadline_flushes, 0, "shed, not flushed: {stats:?}");
    }

    #[test]
    fn config_default_deadline_applies_to_plain_calls() {
        let index = build_index(64);
        let cfg = SchedulerConfig {
            batch_target: 1_000_000,
            deadline: Duration::from_millis(500),
            op_deadline: Some(Duration::from_millis(5)),
            ..SchedulerConfig::default()
        };
        let sched = spawn(&index, cfg);
        let client = sched.client().unwrap();
        assert_eq!(
            client.lookup(vec![key(1)]),
            Err(SchedError::DeadlineExceeded)
        );
        drop(client);
        let stats = sched.join().unwrap();
        assert_eq!(stats.shed_ops, 1);
    }

    #[test]
    fn latency_slo_walks_breaker_open_half_open_closed() {
        let index = build_index(256);
        let cfg = SchedulerConfig {
            batch_target: 1_000_000,
            deadline: Duration::from_millis(2),
            breaker: Some(BreakerConfig {
                // Any real device batch violates a 0.5 ns SLO instantly.
                latency_slo_ns: Some(0.5),
                latency_window: 1,
                open_cooldown: Duration::from_millis(20),
                probe_batches: 1,
                ..BreakerConfig::default()
            }),
            ..SchedulerConfig::default()
        };
        let sched = spawn(&index, cfg);
        let client = sched.client().unwrap();
        // Batch 1: device update, trips the breaker on latency. The
        // journal (shadowing is on whenever a breaker is configured)
        // keeps the mutation authoritative across the pin.
        assert_eq!(client.update(vec![(key(5), 555)]).unwrap().len(), 1);
        // While open: CPU-path service, mutations included.
        assert_eq!(client.lookup_one(key(5)).unwrap(), 555);
        assert_eq!(client.lookup_one(key(6)).unwrap(), 60);
        // After the cooldown: a probe batch reaches the device, recovers
        // the image, and closes the breaker.
        std::thread::sleep(Duration::from_millis(30));
        assert_eq!(client.lookup_one(key(7)).unwrap(), 70);
        assert_eq!(client.lookup_one(key(5)).unwrap(), 555);
        drop(client);
        let stats = sched.join().unwrap();
        assert!(stats.breaker_trips >= 1, "{stats:?}");
        assert!(stats.probe_batches >= 1, "{stats:?}");
        assert!(stats.breaker_open_batches >= 1, "{stats:?}");
    }

    #[test]
    fn join_close_race_always_resolves_cleanly() {
        // Loom-style repeated interleaving: a producer hammers the
        // scheduler while the main thread joins it. Every call must end
        // in a value or a clean `Shutdown` — never a hang, a panic, or a
        // send-on-closed error.
        let index = build_index(64);
        for round in 0..50 {
            let cfg = SchedulerConfig {
                batch_target: 8,
                deadline: Duration::from_micros(50),
                ..SchedulerConfig::default()
            };
            let sched = spawn(&index, cfg);
            let client = sched.client().unwrap();
            let producer = std::thread::spawn(move || loop {
                match client.lookup_one(key(3)) {
                    Ok(v) => assert_eq!(v, 30),
                    Err(e) => return e,
                }
            });
            // Vary the race window a little each round.
            std::thread::sleep(Duration::from_micros(50 * (round % 7)));
            sched.join().unwrap();
            let err = producer.join().unwrap();
            assert_eq!(err, SchedError::Shutdown, "round {round}");
        }
    }
}
