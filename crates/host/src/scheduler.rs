//! Concurrent batch scheduler with sorted-batch execution.
//!
//! The paper's end-to-end numbers assume an *upstream* component that turns
//! a stream of point operations into device-sized batches (§4.1 "batching
//! on the host"). This module is that component: N producer threads submit
//! point lookups / updates / inserts through a cloneable
//! [`SchedulerClient`]; a single executor thread owns the
//! [`CuartSession`](cuart::CuartSession) and coalesces submissions into
//! adaptive batches that flush when either
//!
//! * the queued key count reaches [`SchedulerConfig::batch_target`]
//!   (**size flush**), or
//! * the oldest queued operation has waited
//!   [`SchedulerConfig::deadline`] (**deadline flush**), or
//! * every client has disconnected (**final flush**, on shutdown).
//!
//! Before dispatch the batch keys are **sorted** (stable, via
//! [`sort_permutation`]) so that adjacent kernel lanes traverse neighboring
//! tree paths — the coalescing win §3.1 argues for — and the **inverse
//! permutation** is applied on return so every caller sees results in its
//! own submission order. Stability preserves last-write-wins semantics for
//! duplicate update keys.
//!
//! Cross-kind ordering is preserved: the pending queue is FIFO over whole
//! requests, and a flush executes it as maximal same-kind *head runs* (all
//! leading lookups as one batch, then the following updates as one batch,
//! …), so an update submitted before a lookup by the same producer is
//! applied before that lookup executes.
//!
//! Everything here is `std`-only: `std::sync::mpsc` for the submission
//! queue and per-request reply channels, `std::thread` for the executor.

use cuart::{CuartError, CuartIndex};
use cuart_gpu_sim::batch::{gather, scatter_inverse, sort_permutation};
use cuart_gpu_sim::exec::KernelReport;
use cuart_gpu_sim::{DeviceConfig, FaultInjector};
use cuart_telemetry::{names, SpanNode, Telemetry};
use std::collections::VecDeque;
use std::fmt;
use std::sync::mpsc::{self, Receiver, RecvTimeoutError, Sender, SyncSender};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// How the executor should form device batches.
#[derive(Debug, Clone)]
pub struct SchedulerConfig {
    /// Flush as soon as this many keys are queued (size flush). The batch
    /// handed to the session may exceed the target by at most one
    /// request's worth of keys.
    pub batch_target: usize,
    /// Flush when the oldest queued operation has waited this long
    /// (deadline flush), even if the batch is underfilled.
    pub deadline: Duration,
    /// Sort batch keys before dispatch and invert the permutation on
    /// return. `false` packs in arrival order (used by the benchmarks to
    /// measure the locality win, and by tests as the control).
    pub sort_batches: bool,
    /// Optional fault injector attached to the executor's session at open
    /// time (so the journal covers the whole scheduler lifetime).
    pub fault_injector: Option<FaultInjector>,
}

impl Default for SchedulerConfig {
    fn default() -> Self {
        SchedulerConfig {
            batch_target: 32_768,
            deadline: Duration::from_micros(200),
            sort_batches: true,
            fault_injector: None,
        }
    }
}

/// Why a submission could not be served.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SchedError {
    /// The scheduler thread has shut down (or panicked) and can no longer
    /// accept or answer requests.
    Disconnected,
    /// The session failed the batch with a non-transient error. Carries
    /// the rendered [`CuartError`](cuart::CuartError).
    Session(String),
}

impl fmt::Display for SchedError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SchedError::Disconnected => write!(f, "scheduler disconnected"),
            SchedError::Session(e) => write!(f, "session error: {e}"),
        }
    }
}

impl std::error::Error for SchedError {}

impl From<&CuartError> for SchedError {
    fn from(e: &CuartError) -> Self {
        SchedError::Session(e.to_string())
    }
}

/// Operation kind of one queued request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum OpKind {
    Lookup,
    Update,
    Insert,
}

/// What travels over the submission queue.
enum Msg {
    /// A client request.
    Req(Request),
    /// Explicit shutdown from [`Scheduler::join`]/`Drop`: drain the
    /// pending queue and exit, even though clients may still hold
    /// senders.
    Shutdown,
}

/// One queued submission: a slice of same-kind point ops from one client
/// call, plus the channel its results go back on.
struct Request {
    kind: OpKind,
    keys: Vec<Vec<u8>>,
    /// One value per key for updates/inserts; empty for lookups.
    values: Vec<u64>,
    reply: SyncSender<Result<Vec<u64>, SchedError>>,
    enqueued: Instant,
}

/// Counters and model totals accumulated by the executor thread, returned
/// by [`Scheduler::join`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SchedulerStats {
    /// Point operations accepted from clients.
    pub ops_enqueued: u64,
    /// Client calls (requests) served.
    pub requests: u64,
    /// Device batches dispatched to the session.
    pub batches: u64,
    /// Batches dispatched sorted (the locality path).
    pub sorted_batches: u64,
    /// Flushes triggered by reaching the size target.
    pub size_flushes: u64,
    /// Flushes triggered by the oldest op hitting its deadline.
    pub deadline_flushes: u64,
    /// Flushes triggered by client disconnect at shutdown.
    pub final_flushes: u64,
    /// Keys handed to the session across all batches.
    pub keys_dispatched: u64,
    /// Largest key backlog observed at any flush.
    pub max_queue_depth: u64,
    /// Modeled kernel time across all batches, nanoseconds.
    pub kernel_time_ns: f64,
    /// L2 hits across all batches.
    pub l2_hits: u64,
    /// L2 sector accesses across all batches.
    pub sectors: u64,
    /// DRAM transactions across all batches.
    pub dram_transactions: u64,
    /// Raw per-lane accesses across all batches (pre-coalescing).
    pub raw_accesses: u64,
    /// Batches that failed with a session error.
    pub failed_batches: u64,
}

impl SchedulerStats {
    /// Mean keys per dispatched batch (0 when no batch ran).
    pub fn mean_batch_fill(&self) -> f64 {
        if self.batches == 0 {
            0.0
        } else {
            self.keys_dispatched as f64 / self.batches as f64
        }
    }

    /// Aggregate L2 hit rate across all batches (1.0 with no traffic).
    pub fn l2_hit_rate(&self) -> f64 {
        if self.sectors == 0 {
            1.0
        } else {
            self.l2_hits as f64 / self.sectors as f64
        }
    }

    /// Modeled kernel nanoseconds per dispatched key (0 when idle).
    pub fn kernel_ns_per_key(&self) -> f64 {
        if self.keys_dispatched == 0 {
            0.0
        } else {
            self.kernel_time_ns / self.keys_dispatched as f64
        }
    }

    fn absorb_report(&mut self, keys: usize, report: &KernelReport) {
        self.batches += 1;
        self.keys_dispatched += keys as u64;
        self.kernel_time_ns += report.time_ns;
        self.l2_hits += report.l2_hits;
        self.sectors += report.sectors;
        self.dram_transactions += report.dram_transactions;
        self.raw_accesses += report.raw_accesses;
    }
}

/// Cloneable producer-side handle. Each call blocks until its batch has
/// executed and returns results in the caller's submission order.
#[derive(Clone)]
pub struct SchedulerClient {
    tx: Sender<Msg>,
}

impl SchedulerClient {
    fn submit(
        &self,
        kind: OpKind,
        keys: Vec<Vec<u8>>,
        values: Vec<u64>,
    ) -> Result<Vec<u64>, SchedError> {
        if keys.is_empty() {
            return Ok(Vec::new());
        }
        // Rendezvous channel: the executor's send blocks only if this
        // thread died between submit and recv, which recv's Err covers.
        let (reply, result) = mpsc::sync_channel(1);
        let req = Request {
            kind,
            keys,
            values,
            reply,
            enqueued: Instant::now(),
        };
        self.tx
            .send(Msg::Req(req))
            .map_err(|_| SchedError::Disconnected)?;
        result.recv().map_err(|_| SchedError::Disconnected)?
    }

    /// Submit a slice of point lookups; blocks until the batch containing
    /// them executes. Returns one result per key in submission order
    /// ([`NOT_FOUND`](cuart_gpu_sim::batch::NOT_FOUND) for absent keys).
    pub fn lookup(&self, keys: Vec<Vec<u8>>) -> Result<Vec<u64>, SchedError> {
        self.submit(OpKind::Lookup, keys, Vec::new())
    }

    /// Submit one point lookup.
    pub fn lookup_one(&self, key: Vec<u8>) -> Result<u64, SchedError> {
        Ok(self.lookup(vec![key])?[0])
    }

    /// Submit point updates (`DELETE` as the value deletes). Returns one
    /// status per op (see [`status`](cuart::update::status)).
    pub fn update(&self, ops: Vec<(Vec<u8>, u64)>) -> Result<Vec<u64>, SchedError> {
        let (keys, values) = split_ops(ops);
        self.submit(OpKind::Update, keys, values)
    }

    /// Submit point inserts. Returns one status per op (see
    /// [`insert_status`](cuart::insert::insert_status)).
    pub fn insert(&self, ops: Vec<(Vec<u8>, u64)>) -> Result<Vec<u64>, SchedError> {
        let (keys, values) = split_ops(ops);
        self.submit(OpKind::Insert, keys, values)
    }
}

fn split_ops(ops: Vec<(Vec<u8>, u64)>) -> (Vec<Vec<u8>>, Vec<u64>) {
    let mut keys = Vec::with_capacity(ops.len());
    let mut values = Vec::with_capacity(ops.len());
    for (k, v) in ops {
        keys.push(k);
        values.push(v);
    }
    (keys, values)
}

/// Owning handle for the executor thread. Dropping it shuts the executor
/// down; [`join`](Scheduler::join) does the same and returns the stats.
pub struct Scheduler {
    tx: Option<Sender<Msg>>,
    handle: Option<JoinHandle<SchedulerStats>>,
}

impl Scheduler {
    /// Spawn the executor thread. It opens a
    /// [`device_session`](CuartIndex::device_session) on `index` (attaching
    /// `cfg.fault_injector` if present, so the journal covers the session's
    /// whole life) and serves batches until every client hangs up.
    pub fn spawn(index: Arc<CuartIndex>, dev: DeviceConfig, cfg: SchedulerConfig) -> Scheduler {
        let (tx, rx) = mpsc::channel();
        let handle = std::thread::spawn(move || executor(index, dev, cfg, rx));
        Scheduler {
            tx: Some(tx),
            handle: Some(handle),
        }
    }

    /// A new producer handle. Clients are cheap to clone and `Send`, so
    /// each producer thread can own one.
    pub fn client(&self) -> SchedulerClient {
        SchedulerClient {
            tx: self.tx.as_ref().expect("scheduler already joined").clone(),
        }
    }

    /// Shut down: signal the executor, wait for it to drain its queue, and
    /// return the accumulated [`SchedulerStats`]. Requests submitted
    /// before the shutdown signal are served (the queue is FIFO); clients
    /// that submit afterwards get [`SchedError::Disconnected`].
    pub fn join(mut self) -> SchedulerStats {
        if let Some(tx) = self.tx.take() {
            let _ = tx.send(Msg::Shutdown);
        }
        match self.handle.take() {
            Some(h) => h.join().unwrap_or_default(),
            None => SchedulerStats::default(),
        }
    }
}

impl Drop for Scheduler {
    fn drop(&mut self) {
        if let Some(tx) = self.tx.take() {
            let _ = tx.send(Msg::Shutdown);
        }
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

/// The executor loop: block for work, coalesce, flush on size / deadline /
/// disconnect.
fn executor(
    index: Arc<CuartIndex>,
    dev: DeviceConfig,
    cfg: SchedulerConfig,
    rx: Receiver<Msg>,
) -> SchedulerStats {
    let mut session = index.device_session(&dev);
    // The scheduler records the full `sched.batch.*` tree around each
    // device leg (queueing, sort, scatter and the leg itself); the
    // session's own `batch.*` trees would double-count it.
    session.set_span_recording(false);
    if let Some(injector) = cfg.fault_injector.clone() {
        session.attach_fault_injector(injector);
    }
    let telemetry = index.telemetry().cloned();
    let batch_target = cfg.batch_target.max(1);

    let mut stats = SchedulerStats::default();
    let mut pending: VecDeque<Request> = VecDeque::new();
    let mut pending_keys = 0usize;

    loop {
        // Wait for work: block indefinitely with an empty queue, else only
        // until the oldest queued op's deadline.
        let msg = if pending.is_empty() {
            match rx.recv() {
                Ok(m) => m,
                Err(_) => break, // all senders gone, queue empty
            }
        } else {
            let oldest = pending.front().expect("non-empty").enqueued;
            let remaining = cfg.deadline.saturating_sub(oldest.elapsed());
            match rx.recv_timeout(remaining) {
                Ok(m) => m,
                Err(RecvTimeoutError::Timeout) => {
                    // Deadline expired for the oldest queued op.
                    let depth = pending_keys as u64;
                    flush(
                        &mut session,
                        &mut pending,
                        &mut pending_keys,
                        &cfg,
                        &mut stats,
                    );
                    stats.deadline_flushes += 1;
                    record_flush(&telemetry, Some(names::SCHED_DEADLINE_FLUSHES), depth);
                    continue;
                }
                Err(RecvTimeoutError::Disconnected) => Msg::Shutdown,
            }
        };

        match msg {
            Msg::Req(req) => {
                stats.ops_enqueued += req.keys.len() as u64;
                if let Some(t) = &telemetry {
                    t.incr(names::SCHED_ENQUEUED, req.keys.len() as u64);
                }
                pending_keys += req.keys.len();
                pending.push_back(req);
                if pending_keys >= batch_target {
                    let depth = pending_keys as u64;
                    flush(
                        &mut session,
                        &mut pending,
                        &mut pending_keys,
                        &cfg,
                        &mut stats,
                    );
                    stats.size_flushes += 1;
                    record_flush(&telemetry, Some(names::SCHED_SIZE_FLUSHES), depth);
                }
            }
            Msg::Shutdown => {
                if !pending.is_empty() {
                    let depth = pending_keys as u64;
                    flush(
                        &mut session,
                        &mut pending,
                        &mut pending_keys,
                        &cfg,
                        &mut stats,
                    );
                    stats.final_flushes += 1;
                    record_flush(&telemetry, None, depth);
                }
                break;
            }
        }
    }
    stats
}

/// Telemetry bookkeeping for one flush (optional counter + queue-depth
/// gauge recording the backlog the flush drained).
fn record_flush(
    telemetry: &Option<Arc<cuart_telemetry::Telemetry>>,
    counter: Option<&'static str>,
    depth: u64,
) {
    if let Some(t) = telemetry {
        if let Some(c) = counter {
            t.incr(c, 1);
        }
        t.gauge_set(names::SCHED_QUEUE_DEPTH, depth as f64);
    }
}

/// Drain the whole pending queue as maximal same-kind head runs, each run
/// one device batch.
fn flush(
    session: &mut cuart::CuartSession<'_>,
    pending: &mut VecDeque<Request>,
    pending_keys: &mut usize,
    cfg: &SchedulerConfig,
    stats: &mut SchedulerStats,
) {
    stats.max_queue_depth = stats.max_queue_depth.max(*pending_keys as u64);
    while !pending.is_empty() {
        let kind = pending.front().expect("non-empty").kind;
        let mut run: Vec<Request> = Vec::new();
        while pending.front().is_some_and(|r| r.kind == kind) {
            run.push(pending.pop_front().expect("checked front"));
        }
        execute_run(session, kind, run, cfg, stats);
    }
    *pending_keys = 0;
}

/// Execute one same-kind run as a single (optionally sorted) device batch
/// and reply to every request in it.
fn execute_run(
    session: &mut cuart::CuartSession<'_>,
    kind: OpKind,
    run: Vec<Request>,
    cfg: &SchedulerConfig,
    stats: &mut SchedulerStats,
) {
    let telemetry = session.telemetry().cloned();
    // Concatenate the run into one batch, remembering per-request extents.
    let total: usize = run.iter().map(|r| r.keys.len()).sum();
    let mut keys: Vec<Vec<u8>> = Vec::with_capacity(total);
    let mut values: Vec<u64> = Vec::with_capacity(total);
    let mut extents: Vec<usize> = Vec::with_capacity(run.len());
    let oldest = run.iter().map(|r| r.enqueued).min();
    for r in &run {
        extents.push(r.keys.len());
        keys.extend(r.keys.iter().cloned());
        values.extend(r.values.iter().cloned());
    }

    // Sorted-batch composition: stable sort keeps duplicate keys in
    // submission order, so kernel-side "highest tid wins" still resolves
    // to the latest submitted op.
    let perm = if cfg.sort_batches && total > 1 {
        let p = sort_permutation(&keys);
        keys = gather(&keys, &p);
        if !values.is_empty() {
            values = gather(&values, &p);
        }
        Some(p)
    } else {
        None
    };

    let outcome = match kind {
        OpKind::Lookup => session.lookup_batch(&keys),
        OpKind::Update => {
            let ops: Vec<(Vec<u8>, u64)> = keys.into_iter().zip(values).collect();
            session.update_batch(&ops)
        }
        OpKind::Insert => {
            let ops: Vec<(Vec<u8>, u64)> = keys.into_iter().zip(values).collect();
            session.insert_batch(&ops)
        }
    };

    match outcome {
        Ok((batch_results, report)) => {
            stats.absorb_report(total, &report);
            if perm.is_some() {
                stats.sorted_batches += 1;
            }
            let results = match &perm {
                Some(p) => scatter_inverse(&batch_results, p),
                None => batch_results,
            };
            if let Some(t) = &telemetry {
                t.incr(names::SCHED_BATCHES, 1);
                t.observe(names::SCHED_BATCH_FILL, total as u64);
                if perm.is_some() {
                    t.incr(names::SCHED_SORTED_BATCHES, 1);
                }
                if let Some(start) = oldest {
                    t.observe(
                        names::SCHED_QUEUE_LATENCY_NS,
                        start.elapsed().as_nanos() as u64,
                    );
                }
                record_sched_span(session, t, kind, total, perm.is_some(), &report);
            }
            // Slice results back out per request, in FIFO order.
            let mut off = 0usize;
            for (req, len) in run.into_iter().zip(extents) {
                stats.requests += 1;
                let slice = results[off..off + len].to_vec();
                off += len;
                let _ = req.reply.send(Ok(slice));
            }
        }
        Err(e) => {
            stats.failed_batches += 1;
            let err = SchedError::from(&e);
            for req in run {
                stats.requests += 1;
                let _ = req.reply.send(Err(err.clone()));
            }
        }
    }
}

/// Modeled host cost of packing one key into the coalesced batch buffer.
const COALESCE_NS_PER_KEY: u64 = 4;
/// Modeled host cost per key·log2(n) of the stable batch sort (§3.2).
const SORT_NS_PER_KEY_LOG: u64 = 8;
/// Modeled host cost of scattering one result back to its caller's order.
const SCATTER_NS_PER_KEY: u64 = 4;

/// Commit the `sched.batch.<kind>` span tree for one dispatched run:
/// host-side coalesce / sort / scatter (modeled constants above), the
/// PCIe legs, the launch overhead and the kernel's `dram`/`exec`
/// decomposition. All children are sequential, so the leaf durations sum
/// to the root — the batch's modeled end-to-end time.
fn record_sched_span(
    session: &cuart::CuartSession<'_>,
    t: &Telemetry,
    kind: OpKind,
    total: usize,
    sorted: bool,
    report: &KernelReport,
) {
    if report.time_ns <= 0.0 || total == 0 {
        return;
    }
    let dev = session.device();
    let n = total as u64;
    // Bit length of n: a cheap, deterministic ⌈log2⌉ stand-in.
    let log2n = (u64::BITS - n.leading_zeros()).max(1) as u64;
    let up = cuart_gpu_sim::pcie::upload(&dev.pcie, total, session.device_key_stride());
    let down = cuart_gpu_sim::pcie::download(&dev.pcie, total, 8);
    let mut children = vec![SpanNode::leaf("coalesce", COALESCE_NS_PER_KEY * n)];
    if sorted {
        children.push(SpanNode::leaf("sort", SORT_NS_PER_KEY_LOG * n * log2n));
    }
    children.push(SpanNode::leaf("h2d", up.time_ns as u64).with_attr("bytes", up.bytes));
    children.push(SpanNode::leaf(
        "launch",
        (dev.launch_overhead_us * 1_000.0) as u64,
    ));
    children.push(report.to_span());
    children.push(SpanNode::leaf("d2h", down.time_ns as u64).with_attr("bytes", down.bytes));
    if sorted {
        children.push(SpanNode::leaf("scatter", SCATTER_NS_PER_KEY * n));
    }
    let name = match kind {
        OpKind::Lookup => "sched.batch.lookup",
        OpKind::Update => "sched.batch.update",
        OpKind::Insert => "sched.batch.insert",
    };
    let root = SpanNode::node(name, children)
        .with_attr("keys", total)
        .with_attr("sorted", sorted);
    t.record_span_tree(&root);
}

#[cfg(test)]
mod tests {
    use super::*;
    use cuart::{CuartConfig, CuartIndex};
    use cuart_art::Art;
    use cuart_gpu_sim::batch::NOT_FOUND;
    use cuart_gpu_sim::devices;

    fn build_index(n: u64) -> Arc<CuartIndex> {
        let mut art = Art::new();
        for i in 0..n {
            art.insert(&i.to_be_bytes(), i * 10).unwrap();
        }
        Arc::new(CuartIndex::build(&art, &CuartConfig::default()))
    }

    fn spawn(index: &Arc<CuartIndex>, cfg: SchedulerConfig) -> Scheduler {
        Scheduler::spawn(Arc::clone(index), devices::gtx1070(), cfg)
    }

    #[test]
    fn single_client_lookup_roundtrip() {
        let index = build_index(256);
        let sched = spawn(&index, SchedulerConfig::default());
        let client = sched.client();
        let keys: Vec<Vec<u8>> = (0..64u64).map(|i| i.to_be_bytes().to_vec()).collect();
        let results = client.lookup(keys).unwrap();
        for (i, r) in results.iter().enumerate() {
            assert_eq!(*r, i as u64 * 10);
        }
        assert_eq!(
            client.lookup_one(9999u64.to_be_bytes().to_vec()),
            Ok(NOT_FOUND)
        );
        drop(client);
        let stats = sched.join();
        assert_eq!(stats.ops_enqueued, 65);
        assert_eq!(stats.requests, 2);
        assert!(stats.batches >= 1);
        assert_eq!(stats.keys_dispatched, 65);
    }

    #[test]
    fn empty_request_answers_without_executor_roundtrip() {
        let index = build_index(8);
        let sched = spawn(&index, SchedulerConfig::default());
        let client = sched.client();
        assert_eq!(client.lookup(Vec::new()), Ok(Vec::new()));
        drop(client);
        assert_eq!(sched.join().requests, 0);
    }

    #[test]
    fn size_flush_triggers_at_target() {
        let index = build_index(512);
        let cfg = SchedulerConfig {
            batch_target: 32,
            deadline: Duration::from_secs(3600), // never
            ..SchedulerConfig::default()
        };
        let sched = spawn(&index, cfg);
        // Two producers, each submitting 32 keys: both requests can only
        // complete via size flushes (the deadline is an hour away).
        let mut handles = Vec::new();
        for p in 0..2u64 {
            let client = sched.client();
            handles.push(std::thread::spawn(move || {
                let keys: Vec<Vec<u8>> = (p * 32..p * 32 + 32)
                    .map(|i| i.to_be_bytes().to_vec())
                    .collect();
                client.lookup(keys).unwrap()
            }));
        }
        for (p, h) in handles.into_iter().enumerate() {
            let results = h.join().unwrap();
            for (i, r) in results.iter().enumerate() {
                assert_eq!(*r, (p as u64 * 32 + i as u64) * 10);
            }
        }
        let stats = sched.join();
        assert!(stats.size_flushes >= 1, "expected a size flush: {stats:?}");
        assert_eq!(stats.deadline_flushes, 0);
        assert_eq!(stats.keys_dispatched, 64);
    }

    #[test]
    fn deadline_flush_serves_underfilled_batches() {
        let index = build_index(64);
        let cfg = SchedulerConfig {
            batch_target: 1_000_000, // size target unreachable
            deadline: Duration::from_millis(2),
            ..SchedulerConfig::default()
        };
        let sched = spawn(&index, cfg);
        let client = sched.client();
        let r = client.lookup_one(7u64.to_be_bytes().to_vec()).unwrap();
        assert_eq!(r, 70);
        drop(client);
        let stats = sched.join();
        assert!(
            stats.deadline_flushes + stats.final_flushes >= 1,
            "an underfilled batch must flush on deadline or shutdown: {stats:?}"
        );
        assert_eq!(stats.size_flushes, 0);
    }

    #[test]
    fn updates_then_lookups_preserve_order() {
        let index = build_index(128);
        let cfg = SchedulerConfig {
            batch_target: 1_000_000,
            deadline: Duration::from_millis(300),
            ..SchedulerConfig::default()
        };
        let sched = spawn(&index, cfg);
        let client = sched.client();
        // Update then read the same key. FIFO + head-run batching
        // guarantees the update batch executes before the lookup batch
        // even though both wait in the same deadline flush.
        let key = 42u64.to_be_bytes().to_vec();
        let c2 = client.clone();
        let k2 = key.clone();
        let upd = std::thread::spawn(move || c2.update(vec![(k2, 4242)]).unwrap());
        // Generous head start: the update must be queued well before the
        // lookup, and the 300 ms deadline keeps both in one flush.
        std::thread::sleep(Duration::from_millis(100));
        let looked = client.lookup(vec![key]).unwrap();
        let statuses = upd.join().unwrap();
        assert_eq!(statuses.len(), 1);
        assert_eq!(looked, vec![4242]);
        drop(client);
        let stats = sched.join();
        // Two kinds in one flush → at least two batches (head runs).
        assert!(stats.batches >= 2, "head runs split by kind: {stats:?}");
    }

    #[test]
    fn duplicate_update_keys_keep_last_write_wins_when_sorted() {
        let index = build_index(64);
        let cfg = SchedulerConfig {
            batch_target: 1_000_000,
            deadline: Duration::from_millis(5),
            sort_batches: true,
            ..SchedulerConfig::default()
        };
        let sched = spawn(&index, cfg);
        let client = sched.client();
        let key = 5u64.to_be_bytes().to_vec();
        // One request with the same key twice: sorted packing is stable,
        // so the second (later) op must win.
        client
            .update(vec![(key.clone(), 111), (key.clone(), 222)])
            .unwrap();
        assert_eq!(client.lookup_one(key).unwrap(), 222);
        drop(client);
        sched.join();
    }

    #[test]
    fn inserts_flow_through_the_scheduler() {
        let index = build_index(64);
        let sched = spawn(&index, SchedulerConfig::default());
        let client = sched.client();
        let key = 1_000_000u64.to_be_bytes().to_vec();
        assert_eq!(client.lookup_one(key.clone()).unwrap(), NOT_FOUND);
        let statuses = client.insert(vec![(key.clone(), 777)]).unwrap();
        assert_eq!(statuses.len(), 1);
        assert_eq!(client.lookup_one(key).unwrap(), 777);
        drop(client);
        sched.join();
    }

    #[test]
    fn oversized_keys_do_not_poison_a_sorted_batch() {
        let index = build_index(64);
        let sched = spawn(&index, SchedulerConfig::default());
        let client = sched.client();
        // A 300-byte key cannot be packed at any device stride; the
        // session answers NOT_FOUND without panicking, and the short key
        // in the same request still resolves.
        let results = client
            .lookup(vec![vec![0xAB; 300], 3u64.to_be_bytes().to_vec()])
            .unwrap();
        assert_eq!(results, vec![NOT_FOUND, 30]);
        drop(client);
        sched.join();
    }

    #[test]
    fn disconnect_after_join_yields_sched_error() {
        let index = build_index(8);
        let sched = spawn(&index, SchedulerConfig::default());
        let client = sched.client();
        sched.join();
        assert_eq!(
            client.lookup_one(vec![1, 2, 3]),
            Err(SchedError::Disconnected)
        );
    }

    #[test]
    fn multi_producer_results_match_cpu_reference() {
        let index = build_index(1024);
        let cfg = SchedulerConfig {
            batch_target: 256,
            deadline: Duration::from_micros(500),
            ..SchedulerConfig::default()
        };
        let sched = spawn(&index, cfg);
        let producers = 4;
        let per = 512u64;
        let mut handles = Vec::new();
        for p in 0..producers {
            let client = sched.client();
            let index = Arc::clone(&index);
            handles.push(std::thread::spawn(move || {
                // Shuffled-ish stride pattern so producers interleave keys.
                let keys: Vec<Vec<u8>> = (0..per)
                    .map(|i| ((i * 37 + p * 13) % 2048).to_be_bytes().to_vec())
                    .collect();
                let expect: Vec<u64> = index
                    .lookup_batch_cpu(&keys)
                    .into_iter()
                    .map(|r| r.unwrap_or(NOT_FOUND))
                    .collect();
                let got = client.lookup(keys).unwrap();
                assert_eq!(got, expect);
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let stats = sched.join();
        assert_eq!(stats.ops_enqueued, producers * per);
        assert_eq!(stats.keys_dispatched, producers * per);
        assert!(stats.sorted_batches >= 1);
    }
}
