//! Real, measured multi-threaded CPU throughput (Figures 7 and 17).
//!
//! Unlike the GPU paths (which run on the simulator and report modeled
//! time), the CPU comparisons of the paper are CPU-vs-CPU and can be
//! measured for real: batches are split over `std::thread` scoped threads
//! and wall time is taken around the whole run.

use cuart::CuartIndex;
use cuart_art::Art;
use std::sync::{Mutex, MutexGuard, PoisonError};
use std::time::Instant;

/// Lock a mutex, recovering the data if a previous holder panicked.
///
/// The counters and baseline trees guarded here are commutative
/// accumulations: a panicking worker can at worst lose its own local
/// contribution, never corrupt another thread's. Poisoning is therefore
/// recoverable — a fault-tolerant measurement run must not cascade one
/// worker panic into every later measurement.
fn lock_recover<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Measured lookup throughput (MOps/s) of the classic pointer-based ART.
pub fn measure_art_lookups(art: &Art<u64>, queries: &[Vec<u8>], threads: usize) -> f64 {
    let hits = Mutex::new(0usize);
    let start = Instant::now();
    run_chunks(queries, threads, |chunk| {
        let mut local = 0usize;
        for key in chunk {
            if art.get(key).is_some() {
                local += 1;
            }
        }
        *lock_recover(&hits) += local;
    });
    let elapsed = start.elapsed().as_secs_f64();
    std::hint::black_box(*lock_recover(&hits));
    queries.len() as f64 / elapsed / 1e6
}

/// Measured lookup throughput (MOps/s) of the CuART structure-of-buffers
/// layout on the CPU — the other line of Figure 7.
pub fn measure_cuart_cpu_lookups(index: &CuartIndex, queries: &[Vec<u8>], threads: usize) -> f64 {
    let hits = Mutex::new(0usize);
    let start = Instant::now();
    run_chunks(queries, threads, |chunk| {
        let mut local = 0usize;
        for key in chunk {
            if index.lookup_cpu(key).is_some() {
                local += 1;
            }
        }
        *lock_recover(&hits) += local;
    });
    let elapsed = start.elapsed().as_secs_f64();
    std::hint::black_box(*lock_recover(&hits));
    queries.len() as f64 / elapsed / 1e6
}

/// Measured update throughput (MOps/s) of the classic ART under a global
/// lock — the "globally visible, atomic updates" CPU baseline of Figure 17
/// (§4.5: ~2.5 MOps/s on the paper's workstation).
pub fn measure_art_atomic_updates(
    art: &Mutex<Art<u64>>,
    ops: &[(Vec<u8>, u64)],
    threads: usize,
) -> f64 {
    let start = Instant::now();
    run_chunks(ops, threads, |chunk| {
        for (key, value) in chunk {
            let mut guard = lock_recover(art);
            if let Some(v) = guard.get_mut(key) {
                *v = *value;
            }
        }
    });
    let elapsed = start.elapsed().as_secs_f64();
    ops.len() as f64 / elapsed / 1e6
}

/// Split `items` over `threads` scoped worker threads.
fn run_chunks<T: Sync>(items: &[T], threads: usize, work: impl Fn(&[T]) + Sync) {
    let threads = threads.max(1);
    let chunk = items.len().div_ceil(threads).max(1);
    std::thread::scope(|s| {
        for part in items.chunks(chunk) {
            s.spawn(|| work(part));
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use cuart::CuartConfig;
    use cuart_workloads::uniform_keys;

    fn setup(n: usize) -> (Art<u64>, CuartIndex, Vec<Vec<u8>>) {
        let keys = uniform_keys(n, 8, 11);
        let mut art = Art::new();
        for (i, k) in keys.iter().enumerate() {
            art.insert(k, i as u64).unwrap();
        }
        let index = CuartIndex::build(&art, &CuartConfig::for_tests());
        (art, index, keys)
    }

    #[test]
    fn lookup_throughputs_are_positive_and_comparable() {
        let (art, index, keys) = setup(20_000);
        let art_mops = measure_art_lookups(&art, &keys, 2);
        let cuart_mops = measure_cuart_cpu_lookups(&index, &keys, 2);
        assert!(art_mops > 0.0);
        assert!(cuart_mops > 0.0);
        // Figure 7's claim (CuART layout faster) holds on realistic trees;
        // at unit-test scale we only require the same order of magnitude.
        assert!(cuart_mops > art_mops / 10.0);
    }

    #[test]
    fn atomic_updates_apply_and_measure() {
        let (art, _, keys) = setup(5_000);
        let art = Mutex::new(art);
        let ops: Vec<(Vec<u8>, u64)> = keys.iter().map(|k| (k.clone(), 777u64)).collect();
        let mops = measure_art_atomic_updates(&art, &ops, 4);
        assert!(mops > 0.0);
        let guard = art.lock().unwrap();
        assert!(keys.iter().all(|k| guard.get(k) == Some(&777)));
    }

    #[test]
    fn single_thread_and_many_threads_both_work() {
        let (art, _, keys) = setup(2_000);
        assert!(measure_art_lookups(&art, &keys, 1) > 0.0);
        assert!(measure_art_lookups(&art, &keys, 16) > 0.0);
    }

    #[test]
    fn poisoned_mutex_is_recovered() {
        let (art, _, keys) = setup(1_000);
        let art = Mutex::new(art);
        // Poison the mutex by panicking while holding its guard.
        let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _guard = art.lock().unwrap();
            panic!("simulated worker crash");
        }));
        assert!(art.is_poisoned(), "mutex should be poisoned by the panic");
        // Measurements must keep working on the poisoned baseline instead
        // of cascading the crash into every later run.
        let ops: Vec<(Vec<u8>, u64)> = keys.iter().take(100).map(|k| (k.clone(), 5u64)).collect();
        let mops = measure_art_atomic_updates(&art, &ops, 2);
        assert!(mops > 0.0);
        assert_eq!(lock_recover(&art).get(&keys[0]), Some(&5));
    }
}
