//! Out-of-core indexes: trees larger than device memory (§5.1).
//!
//! The paper's second future-work item: *"we plan to add a specialized
//! handling for index structures larger than the device memory, by
//! migrating rarely used parts of the key space into host memory and query
//! them in a hybrid manner with both GPU and CPU doing the work."*
//!
//! [`PartitionedIndex`] splits the key space by leading byte into
//! partitions, each mapped to its own CuART buffer set. A device-memory
//! budget decides how many partitions are **resident** (uploaded, queried
//! by the simulated GPU); the rest are answered by the CPU engine over the
//! host-side buffers. Per-partition access counters drive [`rebalance`]:
//! hot partitions are promoted until the budget is filled, cold ones
//! evicted — the migration policy the paper sketches.
//!
//! [`rebalance`]: PartitionedIndex::rebalance

use cuart::api::run_lookup_batch;
use cuart::{CuartConfig, CuartIndex, DeviceTree};
use cuart_art::Art;
use cuart_gpu_sim::batch::NOT_FOUND;
use cuart_gpu_sim::cache::Cache;
use cuart_gpu_sim::exec::KernelReport;
use cuart_gpu_sim::{DeviceConfig, DeviceMemory};

/// Modeled CPU cost per lookup answered from a non-resident partition
/// (host-side CuART CPU engine, cache-cold).
const CPU_FALLBACK_NS: f64 = 250.0;

struct Partition {
    /// Key range: first byte in `lo..=hi`.
    lo: u8,
    hi: u8,
    index: CuartIndex,
    /// Device state when resident.
    resident: Option<Resident>,
    /// Sliding access counter (halved on rebalance).
    accesses: u64,
}

struct Resident {
    mem: DeviceMemory,
    tree: DeviceTree,
    l2: Cache,
}

/// Report for one partitioned batch.
#[derive(Debug, Clone, Copy, Default)]
pub struct OversizedReport {
    /// Queries answered by resident (device) partitions.
    pub device_queries: usize,
    /// Queries answered by the host CPU engine.
    pub cpu_queries: usize,
    /// Summed modeled device kernel time.
    pub device_ns: f64,
    /// Modeled host time for the CPU-side queries.
    pub cpu_ns: f64,
}

impl OversizedReport {
    /// Overall modeled throughput in MOps/s, with CPU and GPU legs
    /// overlapping (the paper's "hybrid manner with both GPU and CPU
    /// doing the work").
    pub fn mops(&self) -> f64 {
        let total = (self.device_queries + self.cpu_queries) as f64;
        let span = self.device_ns.max(self.cpu_ns);
        if span > 0.0 {
            total / span * 1000.0
        } else {
            0.0
        }
    }
}

/// An index partitioned across device and host memory.
pub struct PartitionedIndex {
    parts: Vec<Partition>,
    dev: DeviceConfig,
    /// Device-memory budget in bytes.
    budget_bytes: usize,
    stride: usize,
}

impl PartitionedIndex {
    /// Partition `keys`/`values` by leading byte into `partitions` roughly
    /// equal first-byte ranges, build one CuART per partition, and make
    /// the first partitions resident up to `budget_bytes`.
    ///
    /// `config.lut_span` applies per partition; prefer 2 (or 0) here —
    /// a 3-byte LUT per partition would multiply the 128 MB table.
    pub fn build(
        keys: &[Vec<u8>],
        values: &[u64],
        partitions: usize,
        config: &CuartConfig,
        dev: &DeviceConfig,
        budget_bytes: usize,
    ) -> Self {
        assert_eq!(keys.len(), values.len());
        assert!((1..=256).contains(&partitions));
        let per = 256usize.div_ceil(partitions);
        let mut parts = Vec::new();
        for p in 0..partitions {
            let lo = (p * per).min(255) as u8;
            let hi = (((p + 1) * per).saturating_sub(1)).min(255) as u8;
            let mut art = Art::new();
            for (k, v) in keys.iter().zip(values) {
                if !k.is_empty() && k[0] >= lo && k[0] <= hi {
                    // cuart-allow: panic-path caller contract: partitioned build takes the same prefix-free key set Art::insert validates
                    art.insert(k, *v).expect("prefix-free keys");
                }
            }
            parts.push(Partition {
                lo,
                hi,
                index: CuartIndex::build(&art, config),
                resident: None,
                accesses: 0,
            });
        }
        let stride = keys.iter().map(|k| k.len()).max().unwrap_or(8).clamp(8, 32);
        let mut this = PartitionedIndex {
            parts,
            dev: *dev,
            budget_bytes,
            stride,
        };
        this.rebalance();
        this
    }

    fn part_of(&self, key: &[u8]) -> Option<usize> {
        let first = *key.first()?;
        self.parts
            .iter()
            .position(|p| first >= p.lo && first <= p.hi)
    }

    /// Total device bytes currently resident.
    pub fn resident_bytes(&self) -> usize {
        self.parts
            .iter()
            .filter(|p| p.resident.is_some())
            .map(|p| p.index.device_bytes())
            .sum()
    }

    /// Indices of the resident partitions.
    pub fn resident_partitions(&self) -> Vec<usize> {
        self.parts
            .iter()
            .enumerate()
            .filter_map(|(i, p)| p.resident.is_some().then_some(i))
            .collect()
    }

    /// Number of partitions.
    pub fn partition_count(&self) -> usize {
        self.parts.len()
    }

    /// Total keys across all partitions.
    pub fn len(&self) -> usize {
        self.parts.iter().map(|p| p.index.len()).sum()
    }

    /// `true` when no keys are stored.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Promote the hottest partitions into the budget, evict the rest.
    /// Access counters are halved (exponential decay), so the policy
    /// adapts when the hot key range drifts.
    pub fn rebalance(&mut self) {
        let mut order: Vec<usize> = (0..self.parts.len()).collect();
        order.sort_by_key(|&i| std::cmp::Reverse(self.parts[i].accesses));
        let mut used = 0usize;
        for &i in &order {
            let bytes = self.parts[i].index.device_bytes();
            let fits = used + bytes <= self.budget_bytes && self.parts[i].len_nonzero();
            if fits {
                used += bytes;
                if self.parts[i].resident.is_none() {
                    let mut mem = DeviceMemory::new();
                    let tree = self.parts[i].index.upload(&mut mem);
                    self.parts[i].resident = Some(Resident {
                        mem,
                        tree,
                        l2: Cache::new(&self.dev.l2),
                    });
                }
            } else {
                self.parts[i].resident = None; // evict (device copy dropped)
            }
        }
        for p in &mut self.parts {
            p.accesses /= 2;
        }
    }

    /// Route a batch: resident partitions answer on the device, the rest
    /// on the CPU. Results come back in query order.
    pub fn lookup_batch(&mut self, queries: &[Vec<u8>]) -> (Vec<u64>, OversizedReport) {
        let mut results = vec![NOT_FOUND; queries.len()];
        let mut report = OversizedReport::default();
        // Group query indices per partition.
        let mut groups: Vec<Vec<usize>> = vec![Vec::new(); self.parts.len()];
        for (qi, key) in queries.iter().enumerate() {
            if let Some(pi) = self.part_of(key) {
                groups[pi].push(qi);
            }
        }
        let stride = self.stride;
        for (pi, group) in groups.iter().enumerate() {
            if group.is_empty() {
                continue;
            }
            let part = &mut self.parts[pi];
            part.accesses += group.len() as u64;
            if let Some(res) = part.resident.as_mut() {
                let batch: Vec<Vec<u8>> = group.iter().map(|&qi| queries[qi].clone()).collect();
                let (vals, kr) = run_lookup_batch(
                    &self.dev,
                    &mut res.mem,
                    &res.tree,
                    &mut res.l2,
                    &batch,
                    stride,
                );
                for (j, &qi) in group.iter().enumerate() {
                    results[qi] = part.index.resolve_host_signal(vals[j], &queries[qi]);
                }
                report.device_queries += group.len();
                report.device_ns += kr.time_ns;
                let _: &KernelReport = &kr;
            } else {
                for &qi in group {
                    results[qi] = part.index.lookup_cpu(&queries[qi]).unwrap_or(NOT_FOUND);
                }
                report.cpu_queries += group.len();
                report.cpu_ns += group.len() as f64 * CPU_FALLBACK_NS;
            }
        }
        (results, report)
    }
}

impl Partition {
    fn len_nonzero(&self) -> bool {
        !self.index.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cuart_gpu_sim::devices;
    use cuart_workloads::uniform_keys;

    fn cfg() -> CuartConfig {
        CuartConfig {
            lut_span: 2,
            ..CuartConfig::default()
        }
    }

    fn build(n: usize, partitions: usize, budget: usize) -> (PartitionedIndex, Vec<Vec<u8>>) {
        let keys = uniform_keys(n, 8, 3);
        let values: Vec<u64> = (0..n as u64).map(|i| i + 1).collect();
        let idx = PartitionedIndex::build(
            &keys,
            &values,
            partitions,
            &cfg(),
            &devices::rtx3090(),
            budget,
        );
        (idx, keys)
    }

    #[test]
    fn all_keys_found_regardless_of_residency() {
        // Budget fits only some partitions.
        let (mut idx, keys) = build(20_000, 8, 2 << 20);
        assert_eq!(idx.partition_count(), 8);
        assert_eq!(idx.len(), 20_000);
        let resident = idx.resident_partitions().len();
        assert!(
            resident > 0 && resident < 8,
            "partial residency expected: {resident}"
        );
        let (results, report) = idx.lookup_batch(&keys[..4000]);
        // Values were assigned by original key position.
        for (i, (k, r)) in keys[..4000].iter().zip(&results).enumerate() {
            assert_eq!(*r, i as u64 + 1, "key {k:x?}");
        }
        assert!(report.device_queries > 0);
        assert!(report.cpu_queries > 0);
        assert!(report.mops() > 0.0);
    }

    #[test]
    fn budget_is_respected() {
        let (idx, _) = build(20_000, 8, 2 << 20);
        assert!(idx.resident_bytes() <= 2 << 20);
    }

    #[test]
    fn everything_resident_with_large_budget() {
        let (mut idx, keys) = build(5_000, 4, 1 << 30);
        assert_eq!(idx.resident_partitions().len(), 4);
        let (results, report) = idx.lookup_batch(&keys[..1000]);
        assert_eq!(report.cpu_queries, 0);
        assert!(results.iter().all(|&r| r != NOT_FOUND));
    }

    #[test]
    fn rebalance_promotes_hot_partitions() {
        let (mut idx, keys) = build(20_000, 8, 3 << 20);
        // Hammer one non-resident partition.
        let cold_pi = (0..8)
            .find(|pi| !idx.resident_partitions().contains(pi))
            .expect("some partition not resident");
        let (lo, hi) = (idx.parts[cold_pi].lo, idx.parts[cold_pi].hi);
        let hot_keys: Vec<Vec<u8>> = keys
            .iter()
            .filter(|k| k[0] >= lo && k[0] <= hi)
            .cloned()
            .collect();
        assert!(!hot_keys.is_empty());
        for _ in 0..5 {
            idx.lookup_batch(&hot_keys);
        }
        idx.rebalance();
        assert!(
            idx.resident_partitions().contains(&cold_pi),
            "hot partition must be promoted"
        );
        // And its queries now run on the device.
        let (_, report) = idx.lookup_batch(&hot_keys);
        assert_eq!(report.cpu_queries, 0);
    }

    #[test]
    fn eviction_after_access_shift() {
        let (mut idx, keys) = build(20_000, 8, 3 << 20);
        let initially_resident = idx.resident_partitions();
        // Hammer the partitions that are NOT resident, several rounds.
        let cold: Vec<Vec<u8>> = keys
            .iter()
            .filter(|k| {
                let pi = idx.part_of(k).expect("in range");
                !initially_resident.contains(&pi)
            })
            .cloned()
            .collect();
        for _ in 0..6 {
            idx.lookup_batch(&cold);
            idx.rebalance();
        }
        let now = idx.resident_partitions();
        assert_ne!(
            now, initially_resident,
            "residency must shift with the workload"
        );
    }

    #[test]
    fn misses_and_empty_keys() {
        let (mut idx, _) = build(2_000, 4, 1 << 30);
        let probes = vec![Vec::new(), vec![0xFF; 8]];
        let (results, _) = idx.lookup_batch(&probes);
        assert_eq!(results[0], NOT_FOUND);
        // 0xFF.. may or may not exist; just ensure no panic and determinism.
        let (again, _) = idx.lookup_batch(&probes);
        assert_eq!(results, again);
    }
}
