//! Sharded, multi-device serving: one [`Scheduler`] per simulated device,
//! key space partitioned by leading bytes.
//!
//! The single-device scheduler (§4.1 "batching on the host", the
//! [`scheduler`](crate::scheduler) module) saturates one GPU. The ROADMAP
//! north-star wants more: production-scale serving across several devices,
//! possibly of different generations. This module is that scale-out layer:
//!
//! * [`ShardedScheduler::spawn`] opens one executor per entry of a
//!   [`DeviceConfig`] slice — homogeneous (4× RTX 3090) or mixed (2× RTX
//!   3090 + 2× GTX 1070) — each with its own
//!   [`CuartSession`](cuart::CuartSession), submission queue, admission
//!   cap and circuit breaker, so one sick shard sheds or degrades alone
//!   while the rest keep serving from their devices.
//! * The key space is partitioned by the [`ShardRouter`]: the leading key
//!   bytes — the same big-endian prefix the §3.3 compacted root indexes
//!   its LUT with — select the shard, so every shard owns a contiguous
//!   range of the root table and of the ordered leaf arenas under it, and
//!   every key maps to exactly one shard (last-write-wins per key, §3.4,
//!   holds fleet-wide).
//! * [`ShardedClient`] calls look exactly like [`SchedulerClient`] calls:
//!   the router splits the batch by shard (stable, so intra-request order
//!   survives), dispatches the sub-batches **concurrently** through each
//!   shard's sorted-batch machinery, and merges the answers back in
//!   arrival order via the recorded index lists — an inverse permutation
//!   over the split.
//!
//! Each shard's scheduler mirrors its counters and gauges to
//! `cuart.sched.shard.<i>.*` (summing to the global `cuart.sched.*`
//! totals), and every routed call commits a standalone `sched.route` span
//! with the fan-out, next to the per-shard `sched.batch.*` trees.

use crate::scheduler::{
    RangeRows, SchedError, Scheduler, SchedulerClient, SchedulerConfig, SchedulerStats,
};
use cuart::{CuartIndex, ShardRouter};
use cuart_gpu_sim::{DeviceConfig, FaultInjector};
use cuart_telemetry::{names, SpanNode, Telemetry};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Modeled host cost of routing one key to its shard (a fixed-width
/// prefix load and one multiply — cheaper than the coalesce copy).
const ROUTE_NS_PER_KEY: u64 = 2;

/// Shared router-side accounting, folded into [`ShardedStats`] at join.
#[derive(Default)]
struct RouteCounters {
    requests: AtomicU64,
    keys: AtomicU64,
}

/// Owning handle for a fleet of per-shard executors. Dropping it shuts
/// every shard down; [`join`](ShardedScheduler::join) does the same and
/// returns the per-shard and aggregate stats.
pub struct ShardedScheduler {
    shards: Vec<Scheduler>,
    devices: Vec<DeviceConfig>,
    router: ShardRouter,
    telemetry: Option<Arc<Telemetry>>,
    route: Arc<RouteCounters>,
}

impl ShardedScheduler {
    /// Spawn one executor per device in `devices`, all serving `index`.
    /// Shard `i` runs on `devices[i]` under a copy of `cfg` with
    /// [`SchedulerConfig::shard`] set to `i` (per-shard telemetry twins)
    /// and, when a fault injector is configured, a per-shard re-seeded
    /// copy so fault streams are independent across shards.
    pub fn spawn(
        index: Arc<CuartIndex>,
        devices: &[DeviceConfig],
        cfg: SchedulerConfig,
    ) -> Result<ShardedScheduler, SchedError> {
        if devices.is_empty() {
            return Err(SchedError::NoShards);
        }
        let telemetry = index.telemetry().cloned();
        let router = ShardRouter::new(devices.len());
        let shards = devices
            .iter()
            .enumerate()
            .map(|(i, dev)| {
                let mut shard_cfg = cfg.clone();
                shard_cfg.shard = Some(i);
                if let Some(inj) = &cfg.fault_injector {
                    let mut fc = inj.config().clone();
                    fc.seed = fc.seed.wrapping_add(i as u64);
                    shard_cfg.fault_injector = Some(FaultInjector::new(fc));
                }
                Scheduler::spawn(Arc::clone(&index), *dev, shard_cfg)
            })
            .collect();
        Ok(ShardedScheduler {
            shards,
            devices: devices.to_vec(),
            router,
            telemetry,
            route: Arc::new(RouteCounters::default()),
        })
    }

    /// Number of shards (== devices) in the fleet.
    pub fn shards(&self) -> usize {
        self.devices.len()
    }

    /// A new producer handle over the whole fleet. Fails with
    /// [`SchedError::Shutdown`] once any shard has been shut down.
    pub fn client(&self) -> Result<ShardedClient, SchedError> {
        let clients = self
            .shards
            .iter()
            .map(|s| s.client())
            .collect::<Result<Vec<_>, _>>()?;
        Ok(ShardedClient {
            clients,
            router: self.router,
            telemetry: self.telemetry.clone(),
            route: Arc::clone(&self.route),
        })
    }

    /// Shut every shard down (FIFO drain, same contract as
    /// [`Scheduler::join`]) and return the per-shard stats. If a shard's
    /// executor panicked, the remaining shards are still joined before
    /// the first error is returned.
    pub fn join(self) -> Result<ShardedStats, SchedError> {
        let mut out = ShardedStats {
            shards: Vec::with_capacity(self.devices.len()),
            routed_requests: self.route.requests.load(Ordering::Relaxed),
            routed_keys: self.route.keys.load(Ordering::Relaxed),
        };
        let mut first_err = None;
        for (i, (sched, dev)) in self.shards.into_iter().zip(self.devices).enumerate() {
            match sched.join() {
                Ok(stats) => out.shards.push(ShardStats {
                    shard: i,
                    device: dev,
                    stats,
                }),
                Err(e) => first_err = first_err.or(Some(e)),
            }
        }
        match first_err {
            Some(e) => Err(e),
            None => Ok(out),
        }
    }
}

/// One shard's share of a [`ShardedStats`].
#[derive(Debug, Clone)]
pub struct ShardStats {
    /// Shard index (position in the spawn-time device slice).
    pub shard: usize,
    /// The device this shard served from.
    pub device: DeviceConfig,
    /// The shard scheduler's own counters.
    pub stats: SchedulerStats,
    // `stats.kernel_time_ns` is the modeled device time; see
    // `modeled_time_ns` for the launch-overhead-inclusive figure.
}

impl ShardStats {
    /// Modeled busy time of this shard: kernel time plus one launch
    /// overhead per dispatched batch (the fig19 convention).
    pub fn modeled_time_ns(&self) -> f64 {
        self.stats.kernel_time_ns
            + self.stats.batches as f64 * self.device.launch_overhead_us * 1_000.0
    }
}

/// Per-shard and router-level stats returned by
/// [`ShardedScheduler::join`].
#[derive(Debug, Clone, Default)]
pub struct ShardedStats {
    /// One entry per shard, in shard order.
    pub shards: Vec<ShardStats>,
    /// Client calls routed through the split/merge path.
    pub routed_requests: u64,
    /// Point ops routed through the split/merge path.
    pub routed_keys: u64,
}

impl ShardedStats {
    /// Field-wise sum of the per-shard counters (maxima for the `max_*`
    /// watermarks, which are per-queue quantities).
    pub fn aggregate(&self) -> SchedulerStats {
        let mut agg = SchedulerStats::default();
        for s in &self.shards {
            let st = &s.stats;
            agg.ops_enqueued = agg.ops_enqueued.saturating_add(st.ops_enqueued);
            agg.requests += st.requests;
            agg.batches = agg.batches.saturating_add(st.batches);
            agg.sorted_batches = agg.sorted_batches.saturating_add(st.sorted_batches);
            agg.size_flushes += st.size_flushes;
            agg.deadline_flushes += st.deadline_flushes;
            agg.final_flushes += st.final_flushes;
            agg.keys_dispatched = agg.keys_dispatched.saturating_add(st.keys_dispatched);
            agg.max_queue_depth = agg.max_queue_depth.max(st.max_queue_depth);
            agg.kernel_time_ns += st.kernel_time_ns; // cuart-allow: arith-overflow f64 accumulator; float addition cannot wrap
            agg.l2_hits = agg.l2_hits.saturating_add(st.l2_hits);
            agg.sectors = agg.sectors.saturating_add(st.sectors);
            agg.dram_transactions = agg.dram_transactions.saturating_add(st.dram_transactions);
            agg.raw_accesses = agg.raw_accesses.saturating_add(st.raw_accesses);
            agg.failed_batches = agg.failed_batches.saturating_add(st.failed_batches);
            agg.shed_ops = agg.shed_ops.saturating_add(st.shed_ops);
            agg.rejected_ops = agg.rejected_ops.saturating_add(st.rejected_ops);
            agg.admission_timeout_ops = agg
                .admission_timeout_ops
                .saturating_add(st.admission_timeout_ops);
            agg.max_resident_ops = agg.max_resident_ops.max(st.max_resident_ops);
            agg.breaker_trips = agg.breaker_trips.saturating_add(st.breaker_trips);
            agg.probe_batches = agg.probe_batches.saturating_add(st.probe_batches);
            agg.breaker_open_batches = agg
                .breaker_open_batches
                .saturating_add(st.breaker_open_batches);
        }
        agg
    }

    /// Modeled wall time of the run: shards execute concurrently on
    /// separate devices, so the fleet finishes with its slowest shard.
    pub fn modeled_time_ns(&self) -> f64 {
        self.shards
            .iter()
            .map(ShardStats::modeled_time_ns)
            .fold(0.0, f64::max)
    }

    /// Modeled aggregate lookup/update throughput in MOps/s: total keys
    /// dispatched over the slowest shard's modeled busy time.
    pub fn modeled_aggregate_mops(&self) -> f64 {
        let keys: u64 = self.shards.iter().map(|s| s.stats.keys_dispatched).sum();
        let wall = self.modeled_time_ns();
        if wall <= 0.0 {
            0.0
        } else {
            keys as f64 * 1_000.0 / wall
        }
    }
}

/// Cloneable producer-side handle over the whole fleet. Each call splits
/// by shard, dispatches concurrently and merges back in arrival order —
/// same blocking semantics and result order as [`SchedulerClient`].
#[derive(Clone)]
pub struct ShardedClient {
    clients: Vec<SchedulerClient>,
    router: ShardRouter,
    telemetry: Option<Arc<Telemetry>>,
    route: Arc<RouteCounters>,
}

impl ShardedClient {
    /// Point lookups across the fleet; one result per key in submission
    /// order ([`NOT_FOUND`](cuart_gpu_sim::batch::NOT_FOUND) for absent
    /// keys).
    pub fn lookup(&self, keys: Vec<Vec<u8>>) -> Result<Vec<u64>, SchedError> {
        self.route(keys, Vec::new(), |c, k, _| c.lookup(k))
    }

    /// Point updates across the fleet (`DELETE` as the value deletes);
    /// one status per op in submission order.
    pub fn update(&self, ops: Vec<(Vec<u8>, u64)>) -> Result<Vec<u64>, SchedError> {
        let (keys, values) = unzip_ops(ops);
        self.route(keys, values, |c, k, v| c.update(zip_ops(k, v)))
    }

    /// Point inserts across the fleet; one status per op in submission
    /// order.
    pub fn insert(&self, ops: Vec<(Vec<u8>, u64)>) -> Result<Vec<u64>, SchedError> {
        let (keys, values) = unzip_ops(ops);
        self.route(keys, values, |c, k, v| c.insert(zip_ops(k, v)))
    }

    /// [`lookup`](Self::lookup) with an explicit latency budget applied
    /// to every sub-batch.
    pub fn lookup_with_deadline(
        &self,
        keys: Vec<Vec<u8>>,
        budget: std::time::Duration,
    ) -> Result<Vec<u64>, SchedError> {
        self.route(keys, Vec::new(), move |c, k, _| {
            c.lookup_with_deadline(k, budget)
        })
    }

    /// [`update`](Self::update) with an explicit latency budget applied
    /// to every sub-batch.
    pub fn update_with_deadline(
        &self,
        ops: Vec<(Vec<u8>, u64)>,
        budget: std::time::Duration,
    ) -> Result<Vec<u64>, SchedError> {
        let (keys, values) = unzip_ops(ops);
        self.route(keys, values, move |c, k, v| {
            c.update_with_deadline(zip_ops(k, v), budget)
        })
    }

    /// [`insert`](Self::insert) with an explicit latency budget applied
    /// to every sub-batch.
    pub fn insert_with_deadline(
        &self,
        ops: Vec<(Vec<u8>, u64)>,
        budget: std::time::Duration,
    ) -> Result<Vec<u64>, SchedError> {
        let (keys, values) = unzip_ops(ops);
        self.route(keys, values, move |c, k, v| {
            c.insert_with_deadline(zip_ops(k, v), budget)
        })
    }

    /// Inclusive range queries across the fleet; one sorted row list per
    /// `[lo, hi]` pair in submission order (see
    /// [`SchedulerClient::range`]).
    ///
    /// A range can span several shards' key intervals: the full `[lo, hi]`
    /// query goes to every shard from `shard_of(lo)` to `shard_of(hi)`,
    /// each shard's answer is filtered to the keys that shard *owns* (its
    /// journal/overflow are authoritative only for those), and the shares
    /// are concatenated in shard order — which is key order, because the
    /// router is monotone in the key prefix.
    pub fn range(&self, ranges: Vec<(Vec<u8>, Vec<u8>)>) -> Result<Vec<RangeRows>, SchedError> {
        self.route_ranges(ranges, None)
    }

    /// [`range`](Self::range) with an explicit latency budget applied to
    /// every sub-query.
    pub fn range_with_deadline(
        &self,
        ranges: Vec<(Vec<u8>, Vec<u8>)>,
        budget: std::time::Duration,
    ) -> Result<Vec<RangeRows>, SchedError> {
        self.route_ranges(ranges, Some(budget))
    }

    fn route_ranges(
        &self,
        ranges: Vec<(Vec<u8>, Vec<u8>)>,
        budget: Option<std::time::Duration>,
    ) -> Result<Vec<RangeRows>, SchedError> {
        let total = ranges.len();
        if total == 0 {
            return Ok(Vec::new());
        }
        // Which original ranges touch each shard (inverted bounds touch
        // none and stay empty in the merge).
        let mut lists: Vec<Vec<usize>> = vec![Vec::new(); self.clients.len()];
        for (i, (lo, hi)) in ranges.iter().enumerate() {
            if lo > hi {
                continue;
            }
            for list in lists
                .iter_mut()
                .take(self.router.shard_of(hi) + 1)
                .skip(self.router.shard_of(lo))
            {
                list.push(i);
            }
        }
        let active = lists.iter().filter(|l| !l.is_empty()).count();
        self.route.requests.fetch_add(1, Ordering::Relaxed);
        self.route.keys.fetch_add(total as u64, Ordering::Relaxed);
        if let Some(t) = &self.telemetry {
            t.incr(names::SCHED_ROUTED_REQUESTS, 1);
            t.incr(names::SCHED_ROUTED_KEYS, total as u64);
            let span = SpanNode::leaf(names::spans::SCHED_ROUTE, ROUTE_NS_PER_KEY * total as u64)
                .with_attr("keys", total)
                .with_attr("shards", active);
            t.record_span_tree(&span);
        }

        type ShardRanges = Vec<(usize, Vec<(Vec<u8>, Vec<u8>)>)>;
        let sub: ShardRanges = lists
            .iter()
            .enumerate()
            .filter(|(_, list)| !list.is_empty())
            .map(|(shard, list)| (shard, list.iter().map(|&i| ranges[i].clone()).collect()))
            .collect();
        let call = |c: &SchedulerClient, r: Vec<(Vec<u8>, Vec<u8>)>| match budget {
            Some(b) => c.range_with_deadline(r, b),
            None => c.range(r),
        };

        let mut merged: Vec<RangeRows> = vec![Vec::new(); total];
        let mut first_err: Option<SchedError> = None;
        let outcomes: Vec<(usize, Result<Vec<RangeRows>, SchedError>)> = if sub.len() == 1 {
            // Single-shard fast path: no reason to pay a thread spawn.
            sub.into_iter()
                .map(|(shard, r)| {
                    let outcome = call(&self.clients[shard], r);
                    (shard, outcome)
                })
                .collect()
        } else {
            std::thread::scope(|scope| {
                let call = &call;
                let clients = &self.clients;
                let handles: Vec<_> = sub
                    .into_iter()
                    .map(|(shard, r)| (shard, scope.spawn(move || call(&clients[shard], r))))
                    .collect();
                handles
                    .into_iter()
                    .map(|(shard, h)| {
                        let r = h.join().unwrap_or_else(|p| {
                            Err(SchedError::ExecutorPanicked(format!(
                                "shard {shard} dispatch panicked: {p:?}"
                            )))
                        });
                        (shard, r)
                    })
                    .collect::<Vec<_>>()
            })
        };
        // Shards ascending == key order (monotone router), so extending
        // per original range keeps each row list sorted.
        for (shard, outcome) in outcomes {
            match outcome {
                Ok(per_query) => {
                    for (&i, rows) in lists[shard].iter().zip(per_query) {
                        merged[i].extend(
                            rows.into_iter()
                                .filter(|(k, _)| self.router.shard_of(k) == shard),
                        );
                    }
                }
                Err(e) => first_err = first_err.or(Some(e)),
            }
        }
        match first_err {
            Some(e) => Err(e),
            None => Ok(merged),
        }
    }

    /// Split → dispatch → merge. `call` runs one shard's sub-batch on
    /// that shard's client; sub-batches go out concurrently (scoped
    /// threads — every client call blocks until its batch executes) and
    /// the answers are scattered back through the recorded index lists.
    ///
    /// Error semantics: if any shard refuses or fails its sub-batch, the
    /// whole call returns that shard's error (lowest shard index wins).
    /// Sub-batches already accepted by healthy shards still execute —
    /// per-shard at-most-once, exactly as if the shards had been called
    /// individually.
    fn route<F>(
        &self,
        keys: Vec<Vec<u8>>,
        values: Vec<u64>,
        call: F,
    ) -> Result<Vec<u64>, SchedError>
    where
        F: Fn(&SchedulerClient, Vec<Vec<u8>>, Vec<u64>) -> Result<Vec<u64>, SchedError> + Sync,
    {
        let total = keys.len();
        if total == 0 {
            return Ok(Vec::new());
        }
        let lists = self.router.split_indices(&keys);
        let active = lists.iter().filter(|l| !l.is_empty()).count();
        self.route.requests.fetch_add(1, Ordering::Relaxed);
        self.route.keys.fetch_add(total as u64, Ordering::Relaxed);
        if let Some(t) = &self.telemetry {
            t.incr(names::SCHED_ROUTED_REQUESTS, 1);
            t.incr(names::SCHED_ROUTED_KEYS, total as u64);
            // Standalone root (like `sched.shed`): routing has no device
            // leg, so the batch-root leaf-sum invariant does not apply.
            let span = SpanNode::leaf(names::spans::SCHED_ROUTE, ROUTE_NS_PER_KEY * total as u64)
                .with_attr("keys", total)
                .with_attr("shards", active);
            t.record_span_tree(&span);
        }

        // One shard's share of the request: (shard, keys, values).
        type SubBatch = (usize, Vec<Vec<u8>>, Vec<u64>);
        // Move each op out of the request exactly once, in shard order.
        let mut keys: Vec<Option<Vec<u8>>> = keys.into_iter().map(Some).collect();
        let mut sub: Vec<SubBatch> = Vec::with_capacity(active);
        for (shard, list) in lists.iter().enumerate() {
            if list.is_empty() {
                continue;
            }
            let sub_keys: Vec<Vec<u8>> = list
                .iter()
                // cuart-allow: panic-path route() emits each op index into exactly one shard list
                .map(|&i| keys[i].take().expect("each index routed once"))
                .collect();
            let sub_values: Vec<u64> = if values.is_empty() {
                Vec::new()
            } else {
                list.iter().map(|&i| values[i]).collect()
            };
            sub.push((shard, sub_keys, sub_values));
        }

        let mut merged: Vec<u64> = vec![0; total];
        let mut first_err: Option<SchedError> = None;
        if let [(shard, k, v)] = &mut sub[..] {
            // Single-shard fast path: no reason to pay a thread spawn.
            let (shard, k, v) = (*shard, std::mem::take(k), std::mem::take(v));
            match call(&self.clients[shard], k, v) {
                Ok(results) => scatter(&mut merged, &lists[shard], results),
                Err(e) => first_err = Some(e),
            }
        } else {
            let outcomes = std::thread::scope(|scope| {
                let call = &call;
                let clients = &self.clients;
                let handles: Vec<_> = sub
                    .into_iter()
                    .map(|(shard, k, v)| (shard, scope.spawn(move || call(&clients[shard], k, v))))
                    .collect();
                handles
                    .into_iter()
                    .map(|(shard, h)| {
                        let r = h.join().unwrap_or_else(|p| {
                            Err(SchedError::ExecutorPanicked(format!(
                                "shard {shard} dispatch panicked: {p:?}"
                            )))
                        });
                        (shard, r)
                    })
                    .collect::<Vec<_>>()
            });
            for (shard, outcome) in outcomes {
                match outcome {
                    Ok(results) => scatter(&mut merged, &lists[shard], results),
                    Err(e) => first_err = first_err.or(Some(e)),
                }
            }
        }
        match first_err {
            Some(e) => Err(e),
            None => Ok(merged),
        }
    }
}

/// Scatter one shard's results back to the caller's arrival order: the
/// split's index lists are, concatenated, a permutation of the request,
/// and this applies its inverse shard by shard.
fn scatter(merged: &mut [u64], list: &[usize], results: Vec<u64>) {
    debug_assert_eq!(list.len(), results.len());
    for (&i, r) in list.iter().zip(results) {
        merged[i] = r;
    }
}

fn unzip_ops(ops: Vec<(Vec<u8>, u64)>) -> (Vec<Vec<u8>>, Vec<u64>) {
    let mut keys = Vec::with_capacity(ops.len());
    let mut values = Vec::with_capacity(ops.len());
    for (k, v) in ops {
        keys.push(k);
        values.push(v);
    }
    (keys, values)
}

fn zip_ops(keys: Vec<Vec<u8>>, values: Vec<u64>) -> Vec<(Vec<u8>, u64)> {
    keys.into_iter().zip(values).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cuart::{CuartConfig, CuartIndex};
    use cuart_art::Art;
    use cuart_gpu_sim::batch::NOT_FOUND;
    use cuart_gpu_sim::devices;
    use std::time::Duration;

    fn build_index(n: u64) -> Arc<CuartIndex> {
        let mut art = Art::new();
        for i in 0..n {
            art.insert(&i.to_be_bytes(), i * 10).unwrap();
        }
        Arc::new(CuartIndex::build(&art, &CuartConfig::for_tests()))
    }

    fn cfg() -> SchedulerConfig {
        SchedulerConfig {
            batch_target: 4096,
            deadline: Duration::from_micros(200),
            ..SchedulerConfig::default()
        }
    }

    #[test]
    fn spawn_on_no_devices_is_refused() {
        let index = build_index(16);
        match ShardedScheduler::spawn(index, &[], cfg()) {
            Err(SchedError::NoShards) => {}
            Err(other) => panic!("expected NoShards, got {other:?}"),
            Ok(_) => panic!("expected NoShards, got a scheduler"),
        }
    }

    #[test]
    fn mixed_fleet_lookup_matches_cpu_and_splits_work() {
        let index = build_index(8192);
        let devs = [
            devices::rtx3090(),
            devices::rtx3090(),
            devices::gtx1070(),
            devices::gtx1070(),
        ];
        let sharded = ShardedScheduler::spawn(Arc::clone(&index), &devs, cfg()).unwrap();
        let client = sharded.client().unwrap();
        // Keys spanning the whole u64 top byte so all shards see traffic.
        let keys: Vec<Vec<u8>> = (0..2048u64)
            .map(|i| i.wrapping_mul(0x9e37_79b9_7f4a_7c15).to_be_bytes().to_vec())
            .chain((0..2048u64).map(|i| i.to_be_bytes().to_vec()))
            .collect();
        let expect: Vec<u64> = index
            .lookup_batch_cpu(&keys)
            .into_iter()
            .map(|r| r.unwrap_or(NOT_FOUND))
            .collect();
        let got = client.lookup(keys).unwrap();
        assert_eq!(got, expect);
        let stats = sharded.join().unwrap();
        assert_eq!(stats.routed_requests, 1);
        assert_eq!(stats.routed_keys, 4096);
        assert_eq!(stats.aggregate().keys_dispatched, 4096);
        let busy = stats
            .shards
            .iter()
            .filter(|s| s.stats.keys_dispatched > 0)
            .count();
        assert!(busy >= 2, "uniform keys must reach several shards");
    }

    #[test]
    fn updates_route_to_owning_shard_and_win_last() {
        let index = build_index(1024);
        let devs = [devices::rtx3090(), devices::gtx1070()];
        let sharded = ShardedScheduler::spawn(Arc::clone(&index), &devs, cfg()).unwrap();
        let client = sharded.client().unwrap();
        // Duplicate keys inside one request: last write must win.
        let k = 7u64.to_be_bytes().to_vec();
        let ops = vec![(k.clone(), 111), (k.clone(), 222), (k.clone(), 333)];
        client.update(ops).unwrap();
        assert_eq!(client.lookup(vec![k]).unwrap(), vec![333]);
        sharded.join().unwrap();
    }

    #[test]
    fn sharded_range_spans_shards_and_sees_routed_updates() {
        let index = build_index(1024);
        let devs = [devices::rtx3090(), devices::gtx1070()];
        let sharded = ShardedScheduler::spawn(Arc::clone(&index), &devs, cfg()).unwrap();
        let client = sharded.client().unwrap();
        // Two keys from opposite ends of the key space, so their owning
        // shards differ; the full-space range must merge both mutations.
        let lo_key = 3u64.to_be_bytes().to_vec();
        let hi_key = [0xFFu8; 8].to_vec();
        client
            .insert(vec![(lo_key.clone(), 111), (hi_key.clone(), 222)])
            .unwrap();
        let full = (vec![0u8], vec![0xFFu8; 9]);
        let rows = client.range(vec![full]).unwrap().remove(0);
        assert_eq!(rows.len(), 1025, "1024 built keys + 1 new insert");
        assert!(rows.windows(2).all(|w| w[0].0 < w[1].0), "sorted, deduped");
        assert!(rows.contains(&(lo_key, 111)));
        assert_eq!(rows.last().unwrap(), &(hi_key, 222));
        let stats = sharded.join().unwrap();
        assert_eq!(stats.routed_requests, 2);
    }

    #[test]
    fn empty_call_answers_without_touching_any_shard() {
        let index = build_index(16);
        let sharded =
            ShardedScheduler::spawn(Arc::clone(&index), &[devices::gtx1070()], cfg()).unwrap();
        let client = sharded.client().unwrap();
        assert_eq!(client.lookup(Vec::new()).unwrap(), Vec::<u64>::new());
        let stats = sharded.join().unwrap();
        assert_eq!(stats.routed_requests, 0);
        assert_eq!(stats.aggregate().batches, 0);
    }
}
