//! End-to-end GPU throughput: sampled kernel times × pipeline model.
//!
//! Simulating every batch of a multi-million-query sweep would be wasteful:
//! batches are statistically identical, so a few are simulated (warm L2,
//! steady state) and the per-batch time feeds the
//! [`pipeline`](cuart_gpu_sim::pipeline) event model together with the PCIe
//! legs and the host-side per-batch cost.

use cuart::{CuartIndex, DELETE};
use cuart_gpu_sim::exec::KernelReport;
use cuart_gpu_sim::pipeline::{simulate, PipelineParams, PipelineReport};
use cuart_gpu_sim::{pcie, DeviceConfig};
use cuart_grt::{ApiProfile, GrtIndex};
use cuart_workloads::{QueryStream, UpdateStream};

/// Host CPU cost per dispatched batch: assembly of the key block plus
/// post-processing of the result block (§4.1's "CPU overhead for
/// processing the lookups afterwards").
pub const HOST_NS_BASE: f64 = 20_000.0;
/// Host CPU cost per query within a batch.
pub const HOST_NS_PER_ITEM: f64 = 25.0;

/// Which engine processes the batches.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Engine {
    /// CuART on the simulated GPU.
    Cuart,
    /// GRT with the CUDA host API.
    GrtCuda,
    /// GRT with the OpenCL host API (heavier dispatch, 2 usable streams).
    GrtOpenCl,
}

impl Engine {
    /// Display label (matches the paper's figure legends).
    pub fn label(&self) -> &'static str {
        match self {
            Engine::Cuart => "CuART",
            Engine::GrtCuda => "GRT-CUDA",
            Engine::GrtOpenCl => "GRT-OpenCL",
        }
    }
}

/// Sweep-level run configuration.
#[derive(Debug, Clone, Copy)]
pub struct RunConfig {
    /// Host threads feeding the GPU (paper default: 8).
    pub host_threads: usize,
    /// Command streams (the paper's host code uses "a variable amount").
    pub streams: usize,
    /// Queries per batch (paper default: 32 Ki).
    pub batch_size: usize,
    /// Total queries the modeled run processes.
    pub total_queries: usize,
    /// Batches actually pushed through the simulator (≥ 2: first warms the
    /// L2, the rest are averaged).
    pub sample_batches: usize,
}

impl Default for RunConfig {
    fn default() -> Self {
        RunConfig {
            host_threads: 8,
            streams: 8,
            batch_size: 32 * 1024,
            total_queries: 1 << 20,
            sample_batches: 3,
        }
    }
}

/// End-to-end throughput report.
#[derive(Debug, Clone)]
pub struct E2eReport {
    /// End-to-end throughput in MOps/s.
    pub mops: f64,
    /// Steady-state kernel time per batch (ns).
    pub kernel_ns_per_batch: f64,
    /// The last sampled kernel report (transaction statistics).
    pub kernel: KernelReport,
    /// The pipeline simulation result.
    pub pipeline: PipelineReport,
}

fn compose(
    dev: &DeviceConfig,
    cfg: &RunConfig,
    kernel_ns: f64,
    kernel: KernelReport,
    key_bytes: usize,
    launch_overhead_ns: f64,
    streams: usize,
) -> E2eReport {
    let batches = cfg.total_queries.div_ceil(cfg.batch_size);
    // The per-batch host cost covers assembly before submit and result
    // handling after copy-down in roughly equal measure (§4.1); both
    // halves occupy the owning host thread.
    let (host_prepare_ns, host_post_ns) =
        PipelineParams::split_host_ns(HOST_NS_BASE + HOST_NS_PER_ITEM * cfg.batch_size as f64);
    let params = PipelineParams {
        batches,
        items_per_batch: cfg.batch_size,
        host_threads: cfg.host_threads,
        streams,
        host_prepare_ns,
        host_post_ns,
        h2d_ns: pcie::upload(&dev.pcie, cfg.batch_size, key_bytes + 1).time_ns,
        kernel_ns,
        d2h_ns: pcie::download(&dev.pcie, cfg.batch_size, 8).time_ns,
        launch_overhead_ns,
    };
    let pipeline = simulate(&params);
    E2eReport {
        mops: pipeline.mops,
        kernel_ns_per_batch: kernel_ns,
        kernel,
        pipeline,
    }
}

/// Average the steady-state (post-warmup) sampled kernel times.
fn steady_state(samples: &[(f64, KernelReport)]) -> (f64, KernelReport) {
    let steady = if samples.len() > 1 {
        &samples[1..]
    } else {
        samples
    };
    match steady.last() {
        Some((_, last)) => {
            let mean = steady.iter().map(|(t, _)| *t).sum::<f64>() / steady.len() as f64;
            (mean, last.clone())
        }
        None => (0.0, KernelReport::default()),
    }
}

/// End-to-end CuART lookup throughput on `dev`.
pub fn run_cuart_lookups(
    index: &CuartIndex,
    dev: &DeviceConfig,
    cfg: &RunConfig,
    queries: &mut QueryStream,
) -> E2eReport {
    let mut session = index.device_session(dev);
    let samples: Vec<(f64, KernelReport)> = (0..cfg.sample_batches.max(2))
        .map(|_| {
            let batch = queries.next_batch(cfg.batch_size);
            let (_, report) = session
                .lookup_batch(&batch)
                // cuart-allow: panic-path figure-runner over an in-memory device; a lookup error is a bench-setup bug worth aborting the run for
                .expect("device lookup leg failed");
            (report.time_ns, report)
        })
        .collect();
    let (kernel_ns, kernel) = steady_state(&samples);
    compose(
        dev,
        cfg,
        kernel_ns,
        kernel,
        index.device_key_stride(),
        dev.launch_overhead_us * 1000.0,
        cfg.streams,
    )
}

/// End-to-end GRT lookup throughput on `dev` under an API profile.
pub fn run_grt_lookups(
    index: &GrtIndex,
    api: ApiProfile,
    dev: &DeviceConfig,
    cfg: &RunConfig,
    queries: &mut QueryStream,
) -> E2eReport {
    let stride = index.buffer().max_key_len.clamp(8, 64);
    let samples: Vec<(f64, KernelReport)> = (0..cfg.sample_batches.max(2))
        .map(|_| {
            let batch = queries.next_batch(cfg.batch_size);
            let (_, report) = index.lookup_batch_device(dev, &batch, stride);
            (report.time_ns, report)
        })
        .collect();
    let (kernel_ns, kernel) = steady_state(&samples);
    compose(
        dev,
        cfg,
        kernel_ns,
        kernel,
        stride,
        api.launch_overhead_ns(dev),
        cfg.streams.min(api.stream_cap()),
    )
}

/// End-to-end CuART update throughput (two-stage device kernel, §3.4) with
/// an explicit hash-table capacity (§4.5 default: 1 Mi slots).
pub fn run_cuart_updates(
    index: &CuartIndex,
    dev: &DeviceConfig,
    cfg: &RunConfig,
    updates: &mut UpdateStream,
    table_slots: usize,
) -> E2eReport {
    let mut session = index.device_session_with_table(dev, table_slots);
    let samples: Vec<(f64, KernelReport)> = (0..cfg.sample_batches.max(2))
        .map(|_| {
            let batch = updates.next_batch(cfg.batch_size, DELETE);
            let (_, report) = session
                .update_batch(&batch)
                // cuart-allow: panic-path figure-runner over an in-memory device; an update error is a bench-setup bug worth aborting the run for
                .expect("device update leg failed");
            (report.time_ns, report)
        })
        .collect();
    let (kernel_ns, kernel) = steady_state(&samples);
    // Updates upload values alongside keys.
    let report = compose(
        dev,
        cfg,
        kernel_ns,
        kernel,
        index.device_key_stride() + 8,
        dev.launch_overhead_us * 1000.0,
        cfg.streams,
    );
    // (The hash-table clear cost is already inside kernel_ns via the
    // session's update_batch.)
    report
}

/// End-to-end GRT update throughput: host-side writes + dirty-region sync
/// (see `cuart-grt::update`); near-constant across devices.
pub fn run_grt_updates(
    index: &mut GrtIndex,
    dev: &DeviceConfig,
    cfg: &RunConfig,
    updates: &mut UpdateStream,
) -> E2eReport {
    let mut total_ns = 0.0;
    let batches = cfg.sample_batches.max(1);
    for _ in 0..batches {
        let batch = updates.next_batch(cfg.batch_size, DELETE);
        // GRT has no device delete path; deletes become value tombstones.
        let batch: Vec<(Vec<u8>, u64)> = batch
            .into_iter()
            .map(|(k, v)| (k, if v == DELETE { 0 } else { v }))
            .collect();
        let out = index.update_batch(&batch, dev);
        total_ns += out.modeled_ns;
    }
    let per_batch = total_ns / batches as f64;
    // Host-side work cannot pipeline with itself: throughput is direct.
    let mops = cfg.batch_size as f64 / per_batch * 1000.0;
    E2eReport {
        mops,
        kernel_ns_per_batch: per_batch,
        kernel: KernelReport::default(),
        pipeline: simulate(&PipelineParams {
            batches: 1,
            items_per_batch: cfg.batch_size,
            host_threads: 1,
            streams: 1,
            // All-host work: the whole batch cost is "preparation".
            host_prepare_ns: per_batch,
            host_post_ns: 0.0,
            h2d_ns: 0.0,
            kernel_ns: 0.0,
            d2h_ns: 0.0,
            launch_overhead_ns: 0.0,
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cuart::CuartConfig;
    use cuart_art::Art;
    use cuart_gpu_sim::devices;
    use cuart_workloads::uniform_keys;

    fn setup(n: usize, key_len: usize) -> (Art<u64>, Vec<Vec<u8>>) {
        let keys = uniform_keys(n, key_len, 99);
        let mut art = Art::new();
        for (i, k) in keys.iter().enumerate() {
            art.insert(k, i as u64).unwrap();
        }
        (art, keys)
    }

    fn small_cfg() -> RunConfig {
        RunConfig {
            batch_size: 2048,
            total_queries: 1 << 16,
            sample_batches: 2,
            ..RunConfig::default()
        }
    }

    #[test]
    fn cuart_beats_grt_on_lookups() {
        // Paper configuration (3-byte LUT) on a tree whose mid levels
        // exceed the L2 — the L2 is scaled with the tree size exactly as
        // the figure harness does, so cache-residency regimes match the
        // paper's 26 Mi-entry runs.
        let n = 120_000;
        let (art, keys) = setup(n, 32);
        let cuart = CuartIndex::build(&art, &CuartConfig::default());
        let grt = GrtIndex::build(&art);
        let mut dev = devices::rtx3090();
        dev.l2.size_bytes = ((dev.l2.size_bytes as f64 * n as f64 / 26e6) as usize).max(64 << 10);
        let cfg = RunConfig {
            batch_size: 8192,
            total_queries: 1 << 17,
            sample_batches: 2,
            ..RunConfig::default()
        };
        let mut qs = QueryStream::new(keys.clone(), 1.0, 5);
        let cu = run_cuart_lookups(&cuart, &dev, &cfg, &mut qs);
        let mut qs = QueryStream::new(keys.clone(), 1.0, 5);
        let gc = run_grt_lookups(&grt, ApiProfile::Cuda, &dev, &cfg, &mut qs);
        assert!(
            cu.mops > 1.2 * gc.mops,
            "CuART {} MOps vs GRT {} MOps",
            cu.mops,
            gc.mops
        );
        assert!(
            cu.mops < 6.0 * gc.mops,
            "speedup should stay in the paper's range"
        );
    }

    #[test]
    fn opencl_profile_is_slower_than_cuda() {
        let (art, keys) = setup(30_000, 16);
        let grt = GrtIndex::build(&art);
        let dev = devices::a100();
        let cfg = small_cfg();
        let mut qs = QueryStream::new(keys.clone(), 1.0, 5);
        let cuda = run_grt_lookups(&grt, ApiProfile::Cuda, &dev, &cfg, &mut qs);
        let mut qs = QueryStream::new(keys, 1.0, 5);
        let ocl = run_grt_lookups(&grt, ApiProfile::OpenCl, &dev, &cfg, &mut qs);
        assert!(cuda.mops >= ocl.mops);
    }

    #[test]
    fn cuart_updates_are_order_of_magnitude_above_grt() {
        let (art, keys) = setup(60_000, 16);
        let cuart = CuartIndex::build(&art, &CuartConfig::for_tests());
        let mut grt = GrtIndex::build(&art);
        let dev = devices::rtx3090();
        let cfg = small_cfg();
        let mut us = UpdateStream::new(keys.clone(), 0.0, 0.0, 6);
        let cu = run_cuart_updates(&cuart, &dev, &cfg, &mut us, 1 << 16);
        let mut us = UpdateStream::new(keys, 0.0, 0.0, 6);
        let gr = run_grt_updates(&mut grt, &dev, &cfg, &mut us);
        assert!(
            cu.mops > 3.0 * gr.mops,
            "CuART update {} MOps vs GRT {} MOps",
            cu.mops,
            gr.mops
        );
    }

    #[test]
    fn throughput_scales_with_host_threads_until_gpu_bound() {
        let (art, keys) = setup(40_000, 16);
        let cuart = CuartIndex::build(&art, &CuartConfig::for_tests());
        let dev = devices::a100();
        let mut mops = Vec::new();
        for threads in [1usize, 2, 8] {
            let cfg = RunConfig {
                host_threads: threads,
                ..small_cfg()
            };
            let mut qs = QueryStream::new(keys.clone(), 1.0, 5);
            mops.push(run_cuart_lookups(&cuart, &dev, &cfg, &mut qs).mops);
        }
        assert!(mops[1] > mops[0], "2 threads must beat 1: {mops:?}");
        assert!(
            mops[2] >= mops[1] * 0.95,
            "8 threads must not regress: {mops:?}"
        );
    }

    #[test]
    fn engine_labels() {
        assert_eq!(Engine::Cuart.label(), "CuART");
        assert_eq!(Engine::GrtOpenCl.label(), "GRT-OpenCL");
    }
}

/// End-to-end throughput of device-side **range queries** (§3.2.1: one
/// binary-search kernel thread per query, returning per-class index pairs).
/// Queries are spans of roughly `span_keys` consecutive stored keys.
pub fn run_cuart_ranges(
    index: &CuartIndex,
    dev: &DeviceConfig,
    cfg: &RunConfig,
    ranges: &[(Vec<u8>, Vec<u8>)],
) -> E2eReport {
    assert!(!ranges.is_empty());
    // Sample the kernel on up to `batch_size` queries (cycled if fewer).
    let batch: Vec<(Vec<u8>, Vec<u8>)> = (0..cfg.batch_size.min(ranges.len() * 4))
        .map(|i| ranges[i % ranges.len()].clone())
        .collect();
    let (_, kernel) = index.range_spans_device(dev, &batch);
    let kernel_ns = kernel.time_ns;
    // A range record is 72 B up, 48 B of span indices down.

    compose(
        dev,
        cfg,
        kernel_ns,
        kernel,
        72 - 1, // compose adds 1 for the length byte
        dev.launch_overhead_us * 1000.0,
        cfg.streams,
    )
}

#[cfg(test)]
mod range_tests {
    use super::*;
    use cuart::CuartConfig;
    use cuart_art::Art;
    use cuart_gpu_sim::devices;
    use cuart_workloads::queries::range_queries;
    use cuart_workloads::uniform_keys;

    #[test]
    fn range_runner_reports_throughput() {
        let keys = uniform_keys(20_000, 8, 77);
        let mut art = Art::new();
        for (i, k) in keys.iter().enumerate() {
            art.insert(k, i as u64).unwrap();
        }
        let index = CuartIndex::build(&art, &CuartConfig::for_tests());
        let ranges = range_queries(&keys, 64, 50, 3);
        let cfg = RunConfig {
            batch_size: 256,
            total_queries: 4096,
            sample_batches: 2,
            ..RunConfig::default()
        };
        let r = run_cuart_ranges(&index, &devices::a100(), &cfg, &ranges);
        assert!(r.mops > 0.0);
        // Range spans resolve via binary search: the chain must be
        // logarithmic in the tree size, not linear.
        assert!(
            r.kernel.max_chain_steps < 120,
            "chain {}",
            r.kernel.max_chain_steps
        );
    }
}
