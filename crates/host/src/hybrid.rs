//! The hybrid CPU/GPU query split (§3.2.3 option 1, Figures 13/14).
//!
//! Each batch is split: keys the device cannot serve (longer than the
//! 32-byte maximum — or, in the Figure 14 control experiment, an arbitrary
//! fraction of short keys) go to a pool of host threads walking the classic
//! ART; the rest go to the GPU. The batch completes when **both** legs
//! finish, so the slower leg sets the pace — which is how 3 % of CPU keys
//! can halve overall throughput (Figure 13).

use crate::gpu_runner::E2eReport;
use cuart_telemetry::{names, BatchEvent, BatchKind, SpanNode, Telemetry};

/// Effective per-operation CPU cost for a long-key lookup in the host ART
/// (nanoseconds). This is deliberately large: the CPU leg chases pointers
/// through a cache-cold multi-million-entry tree *and* sits on the batch
/// critical path (scatter, straggler wait, merge). Figure 13's observed
/// collapse — ~50 % throughput at 3 % CPU keys with 56 host threads —
/// implies exactly this order of magnitude.
pub const CPU_LONG_KEY_NS: f64 = 20_000.0;
/// Per-batch synchronisation cost of the split/merge (scatter the batch,
/// gather and re-order both legs' results).
pub const SPLIT_SYNC_NS: f64 = 50_000.0;

/// Result of a hybrid run.
#[derive(Debug, Clone, Copy)]
pub struct HybridReport {
    /// Overall end-to-end throughput (MOps/s).
    pub mops: f64,
    /// Time of the GPU leg per batch (ns).
    pub gpu_leg_ns: f64,
    /// Time of the CPU leg per batch (ns).
    pub cpu_leg_ns: f64,
    /// `true` when the CPU leg is the bottleneck.
    pub cpu_bound: bool,
}

impl HybridReport {
    /// Record this routing decision into `telemetry`.
    ///
    /// Emits the `cuart.hybrid.*` counters/gauges and a
    /// [`BatchKind::HybridRoute`] event whose `host_spills` field carries
    /// the number of keys routed to the CPU leg and whose `kernel_time_ns`
    /// carries the GPU leg time.
    pub fn record_into(&self, telemetry: &Telemetry, batch_size: usize, cpu_fraction: f64) {
        let cpu_keys = (batch_size as f64 * cpu_fraction).round() as u64;
        let gpu_keys = (batch_size as u64).saturating_sub(cpu_keys);
        telemetry.incr(names::HYBRID_GPU_BATCHES, 1);
        telemetry.incr(names::HYBRID_CPU_KEYS, cpu_keys);
        telemetry.incr(names::HYBRID_GPU_KEYS, gpu_keys);
        telemetry.gauge_set(names::HYBRID_CPU_FRACTION, cpu_fraction);
        let mut event = BatchEvent::new(BatchKind::HybridRoute, batch_size as u64);
        event.kernel_time_ns = self.gpu_leg_ns as u64;
        event.host_spills = cpu_keys;
        telemetry.record(event);
        // Both legs start at the split point and run concurrently, so the
        // children are pinned at offset 0 and the root spans the envelope
        // — the slower leg, which is the batch's modeled time.
        let mut children = vec![SpanNode::leaf(names::spans::GPU, self.gpu_leg_ns as u64)
            .with_attr("keys", gpu_keys)
            .at(0)];
        if self.cpu_leg_ns > 0.0 {
            children.push(
                SpanNode::leaf(names::spans::CPU, self.cpu_leg_ns as u64)
                    .with_attr("keys", cpu_keys)
                    .at(0),
            );
        }
        let root = SpanNode::node(names::spans::HYBRID_ROUTE, children)
            .with_attr("keys", batch_size)
            .with_attr("cpu_bound", self.cpu_bound);
        telemetry.record_span_tree(&root);
    }
}

/// Compose a hybrid run:
/// * `gpu` — the end-to-end report of the GPU engine over the device-
///   servable keys,
/// * `batch_size` — total keys per batch before the split,
/// * `cpu_fraction` — fraction of each batch routed to the CPU,
/// * `cpu_threads` — host threads working the CPU leg,
/// * `cpu_ns_per_op` — per-op CPU cost (see [`CPU_LONG_KEY_NS`]).
///
/// Degenerate caller input saturates instead of panicking: `cpu_fraction`
/// is clamped into `[0, 1]` (NaN counts as 0) and `cpu_threads == 0` is
/// treated as a single thread — a parameter sweep never aborts mid-grid.
pub fn hybrid_throughput(
    gpu: &E2eReport,
    batch_size: usize,
    cpu_fraction: f64,
    cpu_threads: usize,
    cpu_ns_per_op: f64,
) -> HybridReport {
    let cpu_fraction = if cpu_fraction.is_nan() {
        0.0
    } else {
        cpu_fraction.clamp(0.0, 1.0)
    };
    let cpu_threads = cpu_threads.max(1);
    let cpu_keys = batch_size as f64 * cpu_fraction;
    // GPU leg: the engine's steady-state batch time. Removing a few keys
    // does not shrink it — transfer latency, dispatch and pipeline
    // occupancy are per-batch costs, so the leg is charged at full batch
    // size.
    let gpu_ns_per_key = 1000.0 / gpu.mops; // MOps -> ns per key
    let gpu_leg_ns = batch_size as f64 * gpu_ns_per_key;
    let cpu_leg_ns = if cpu_keys > 0.0 {
        SPLIT_SYNC_NS + cpu_keys * cpu_ns_per_op / cpu_threads as f64
    } else {
        0.0
    };
    let batch_ns = gpu_leg_ns.max(cpu_leg_ns);
    HybridReport {
        mops: batch_size as f64 / batch_ns * 1000.0,
        gpu_leg_ns,
        cpu_leg_ns,
        cpu_bound: cpu_leg_ns > gpu_leg_ns,
    }
}

/// Throughput of a **degraded** session: the GPU leg is unavailable (the
/// device faulted out and the session fell back to the CPU path, see
/// `cuart::CuartSession`), so the *entire* batch runs on the host thread
/// pool. This is the floor the fault-tolerant engine guarantees — service
/// continues, at CPU speed — and the reference point for judging how much
/// a recovery re-upload buys back.
///
/// `cpu_threads == 0` saturates to a single thread instead of panicking —
/// the degraded path must never abort on caller-supplied sizes.
pub fn degraded_throughput(
    batch_size: usize,
    cpu_threads: usize,
    cpu_ns_per_op: f64,
) -> HybridReport {
    let cpu_threads = cpu_threads.max(1);
    let cpu_leg_ns = SPLIT_SYNC_NS + batch_size as f64 * cpu_ns_per_op / cpu_threads as f64;
    HybridReport {
        mops: batch_size as f64 / cpu_leg_ns * 1000.0,
        gpu_leg_ns: 0.0,
        cpu_leg_ns,
        cpu_bound: true,
    }
}

/// [`hybrid_throughput`] with an optional telemetry sink: when `telemetry`
/// is attached, the routing decision is recorded via
/// [`HybridReport::record_into`]. The pure function stays untouched so the
/// figure harness can sweep parameters without a registry.
pub fn hybrid_throughput_traced(
    gpu: &E2eReport,
    batch_size: usize,
    cpu_fraction: f64,
    cpu_threads: usize,
    cpu_ns_per_op: f64,
    telemetry: Option<&Telemetry>,
) -> HybridReport {
    let report = hybrid_throughput(gpu, batch_size, cpu_fraction, cpu_threads, cpu_ns_per_op);
    if let Some(t) = telemetry {
        report.record_into(t, batch_size, cpu_fraction);
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use cuart_gpu_sim::exec::KernelReport;
    use cuart_gpu_sim::pipeline::{simulate, PipelineParams};

    fn gpu_report(mops: f64) -> E2eReport {
        E2eReport {
            mops,
            kernel_ns_per_batch: 0.0,
            kernel: KernelReport::default(),
            pipeline: simulate(&PipelineParams {
                batches: 1,
                items_per_batch: 1,
                host_threads: 1,
                streams: 1,
                host_prepare_ns: 1.0,
                host_post_ns: 0.0,
                h2d_ns: 0.0,
                kernel_ns: 0.0,
                d2h_ns: 0.0,
                launch_overhead_ns: 0.0,
            }),
        }
    }

    #[test]
    fn zero_cpu_fraction_matches_gpu_rate() {
        let gpu = gpu_report(170.0);
        let r = hybrid_throughput(&gpu, 32768, 0.0, 56, CPU_LONG_KEY_NS);
        assert!((r.mops - 170.0).abs() < 1.0);
        assert!(!r.cpu_bound);
    }

    #[test]
    fn three_percent_cpu_keys_roughly_halve_throughput() {
        // The headline observation of Figure 13: "around 50% performance
        // impact for only 3% of the keys processed on the CPU".
        let gpu = gpu_report(170.0);
        let r = hybrid_throughput(&gpu, 32768, 0.03, 56, CPU_LONG_KEY_NS);
        let impact = r.mops / 170.0;
        assert!(
            impact > 0.35 && impact < 0.75,
            "3% CPU keys should cost ~half: got factor {impact}"
        );
        assert!(r.cpu_bound);
    }

    #[test]
    fn throughput_monotonically_drops_with_cpu_fraction() {
        let gpu = gpu_report(170.0);
        let mut last = f64::INFINITY;
        for pct in [0.0, 0.01, 0.03, 0.05, 0.10, 0.25, 0.50] {
            let r = hybrid_throughput(&gpu, 32768, pct, 56, CPU_LONG_KEY_NS);
            assert!(r.mops <= last + 1e-9, "not monotone at {pct}");
            last = r.mops;
        }
    }

    #[test]
    fn cpu_bound_plateau_is_engine_independent() {
        // Figure 14: with 5% of keys on the CPU, all GPU engines plateau at
        // (almost) the same level — the CPU leg dominates.
        let fast = hybrid_throughput(&gpu_report(200.0), 32768, 0.05, 56, CPU_LONG_KEY_NS);
        let slow = hybrid_throughput(&gpu_report(90.0), 32768, 0.05, 56, CPU_LONG_KEY_NS);
        assert!(fast.cpu_bound && slow.cpu_bound);
        let gap = (fast.mops - slow.mops).abs() / fast.mops;
        assert!(gap < 0.05, "CPU-bound engines should converge: gap {gap}");
    }

    #[test]
    fn more_cpu_threads_relieve_the_bottleneck() {
        let gpu = gpu_report(170.0);
        let few = hybrid_throughput(&gpu, 32768, 0.10, 8, CPU_LONG_KEY_NS);
        let many = hybrid_throughput(&gpu, 32768, 0.10, 112, CPU_LONG_KEY_NS);
        assert!(many.mops > few.mops);
    }

    #[test]
    fn degraded_mode_is_the_cpu_floor() {
        // Full CPU fallback must be slower than any hybrid split that
        // still has a working GPU leg, but strictly positive (service
        // continues), and scale with host threads.
        let gpu = gpu_report(170.0);
        let hybrid = hybrid_throughput(&gpu, 32768, 0.03, 56, CPU_LONG_KEY_NS);
        let degraded = degraded_throughput(32768, 56, CPU_LONG_KEY_NS);
        assert!(degraded.mops > 0.0);
        assert!(degraded.cpu_bound);
        assert!(
            degraded.mops < hybrid.mops,
            "all-CPU ({}) must undercut the 3% split ({})",
            degraded.mops,
            hybrid.mops
        );
        let wider = degraded_throughput(32768, 112, CPU_LONG_KEY_NS);
        assert!(wider.mops > degraded.mops);
    }

    #[test]
    fn degenerate_parameters_saturate_instead_of_panicking() {
        // Zero threads behaves like one thread; fractions outside [0, 1]
        // (and NaN) clamp. A parameter sweep over caller-supplied grids
        // must never abort.
        let gpu = gpu_report(170.0);
        let zero = degraded_throughput(32768, 0, CPU_LONG_KEY_NS);
        let one = degraded_throughput(32768, 1, CPU_LONG_KEY_NS);
        assert_eq!(zero.mops, one.mops);
        let h_zero = hybrid_throughput(&gpu, 32768, 0.10, 0, CPU_LONG_KEY_NS);
        let h_one = hybrid_throughput(&gpu, 32768, 0.10, 1, CPU_LONG_KEY_NS);
        assert_eq!(h_zero.mops, h_one.mops);
        let over = hybrid_throughput(&gpu, 32768, 1.5, 56, CPU_LONG_KEY_NS);
        let full = hybrid_throughput(&gpu, 32768, 1.0, 56, CPU_LONG_KEY_NS);
        assert_eq!(over.mops, full.mops);
        let nan = hybrid_throughput(&gpu, 32768, f64::NAN, 56, CPU_LONG_KEY_NS);
        let none = hybrid_throughput(&gpu, 32768, 0.0, 56, CPU_LONG_KEY_NS);
        assert_eq!(nan.mops, none.mops);
    }

    #[test]
    #[cfg(feature = "telemetry")]
    fn traced_run_records_routing_decision() {
        let telemetry = Telemetry::new();
        let gpu = gpu_report(170.0);
        let traced =
            hybrid_throughput_traced(&gpu, 1000, 0.03, 56, CPU_LONG_KEY_NS, Some(&telemetry));
        let plain = hybrid_throughput(&gpu, 1000, 0.03, 56, CPU_LONG_KEY_NS);
        assert_eq!(traced.mops, plain.mops);
        let snap = telemetry.snapshot();
        assert_eq!(snap.counters[names::HYBRID_GPU_BATCHES], 1);
        assert_eq!(snap.counters[names::HYBRID_CPU_KEYS], 30);
        assert_eq!(snap.counters[names::HYBRID_GPU_KEYS], 970);
        assert_eq!(snap.gauges[names::HYBRID_CPU_FRACTION], 0.03);
        assert_eq!(snap.events.len(), 1);
        let event = &snap.events[0];
        assert_eq!(event.kind, BatchKind::HybridRoute);
        assert_eq!(event.keys, 1000);
        assert_eq!(event.host_spills, 30);
        assert_eq!(event.kernel_time_ns, traced.gpu_leg_ns as u64);
        // The routing decision also commits a span tree: both legs pinned
        // at the split point, root spanning the slower (CPU) leg.
        assert_eq!(snap.spans.len(), 3);
        let root = &snap.spans[0];
        assert_eq!(root.name, "hybrid.route");
        assert_eq!(root.duration_ns(), traced.cpu_leg_ns as u64);
        let legs: Vec<_> = snap.spans[1..].iter().collect();
        assert!(legs.iter().all(|s| s.parent == root.id));
        assert!(legs.iter().all(|s| s.start_ns == root.start_ns));
        assert_eq!(
            snap.counters.get("cuart.trace.critical.cpu"),
            Some(&1),
            "CPU leg dominates this split"
        );
    }
}
