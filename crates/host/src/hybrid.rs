//! The hybrid CPU/GPU query split (§3.2.3 option 1, Figures 13/14).
//!
//! Each batch is split: keys the device cannot serve (longer than the
//! 32-byte maximum — or, in the Figure 14 control experiment, an arbitrary
//! fraction of short keys) go to a pool of host threads walking the classic
//! ART; the rest go to the GPU. The batch completes when **both** legs
//! finish, so the slower leg sets the pace — which is how 3 % of CPU keys
//! can halve overall throughput (Figure 13).

use crate::gpu_runner::E2eReport;

/// Effective per-operation CPU cost for a long-key lookup in the host ART
/// (nanoseconds). This is deliberately large: the CPU leg chases pointers
/// through a cache-cold multi-million-entry tree *and* sits on the batch
/// critical path (scatter, straggler wait, merge). Figure 13's observed
/// collapse — ~50 % throughput at 3 % CPU keys with 56 host threads —
/// implies exactly this order of magnitude.
pub const CPU_LONG_KEY_NS: f64 = 20_000.0;
/// Per-batch synchronisation cost of the split/merge (scatter the batch,
/// gather and re-order both legs' results).
pub const SPLIT_SYNC_NS: f64 = 50_000.0;

/// Result of a hybrid run.
#[derive(Debug, Clone, Copy)]
pub struct HybridReport {
    /// Overall end-to-end throughput (MOps/s).
    pub mops: f64,
    /// Time of the GPU leg per batch (ns).
    pub gpu_leg_ns: f64,
    /// Time of the CPU leg per batch (ns).
    pub cpu_leg_ns: f64,
    /// `true` when the CPU leg is the bottleneck.
    pub cpu_bound: bool,
}

/// Compose a hybrid run:
/// * `gpu` — the end-to-end report of the GPU engine over the device-
///   servable keys,
/// * `batch_size` — total keys per batch before the split,
/// * `cpu_fraction` — fraction of each batch routed to the CPU,
/// * `cpu_threads` — host threads working the CPU leg,
/// * `cpu_ns_per_op` — per-op CPU cost (see [`CPU_LONG_KEY_NS`]).
pub fn hybrid_throughput(
    gpu: &E2eReport,
    batch_size: usize,
    cpu_fraction: f64,
    cpu_threads: usize,
    cpu_ns_per_op: f64,
) -> HybridReport {
    assert!((0.0..=1.0).contains(&cpu_fraction));
    assert!(cpu_threads > 0);
    let cpu_keys = batch_size as f64 * cpu_fraction;
    // GPU leg: the engine's steady-state batch time. Removing a few keys
    // does not shrink it — transfer latency, dispatch and pipeline
    // occupancy are per-batch costs, so the leg is charged at full batch
    // size.
    let gpu_ns_per_key = 1000.0 / gpu.mops; // MOps -> ns per key
    let gpu_leg_ns = batch_size as f64 * gpu_ns_per_key;
    let cpu_leg_ns = if cpu_keys > 0.0 {
        SPLIT_SYNC_NS + cpu_keys * cpu_ns_per_op / cpu_threads as f64
    } else {
        0.0
    };
    let batch_ns = gpu_leg_ns.max(cpu_leg_ns);
    HybridReport {
        mops: batch_size as f64 / batch_ns * 1000.0,
        gpu_leg_ns,
        cpu_leg_ns,
        cpu_bound: cpu_leg_ns > gpu_leg_ns,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cuart_gpu_sim::exec::KernelReport;
    use cuart_gpu_sim::pipeline::{simulate, PipelineParams};

    fn gpu_report(mops: f64) -> E2eReport {
        E2eReport {
            mops,
            kernel_ns_per_batch: 0.0,
            kernel: KernelReport::default(),
            pipeline: simulate(&PipelineParams {
                batches: 1,
                items_per_batch: 1,
                host_threads: 1,
                streams: 1,
                host_ns_per_batch: 1.0,
                h2d_ns: 0.0,
                kernel_ns: 0.0,
                d2h_ns: 0.0,
                launch_overhead_ns: 0.0,
            }),
        }
    }

    #[test]
    fn zero_cpu_fraction_matches_gpu_rate() {
        let gpu = gpu_report(170.0);
        let r = hybrid_throughput(&gpu, 32768, 0.0, 56, CPU_LONG_KEY_NS);
        assert!((r.mops - 170.0).abs() < 1.0);
        assert!(!r.cpu_bound);
    }

    #[test]
    fn three_percent_cpu_keys_roughly_halve_throughput() {
        // The headline observation of Figure 13: "around 50% performance
        // impact for only 3% of the keys processed on the CPU".
        let gpu = gpu_report(170.0);
        let r = hybrid_throughput(&gpu, 32768, 0.03, 56, CPU_LONG_KEY_NS);
        let impact = r.mops / 170.0;
        assert!(
            impact > 0.35 && impact < 0.75,
            "3% CPU keys should cost ~half: got factor {impact}"
        );
        assert!(r.cpu_bound);
    }

    #[test]
    fn throughput_monotonically_drops_with_cpu_fraction() {
        let gpu = gpu_report(170.0);
        let mut last = f64::INFINITY;
        for pct in [0.0, 0.01, 0.03, 0.05, 0.10, 0.25, 0.50] {
            let r = hybrid_throughput(&gpu, 32768, pct, 56, CPU_LONG_KEY_NS);
            assert!(r.mops <= last + 1e-9, "not monotone at {pct}");
            last = r.mops;
        }
    }

    #[test]
    fn cpu_bound_plateau_is_engine_independent() {
        // Figure 14: with 5% of keys on the CPU, all GPU engines plateau at
        // (almost) the same level — the CPU leg dominates.
        let fast = hybrid_throughput(&gpu_report(200.0), 32768, 0.05, 56, CPU_LONG_KEY_NS);
        let slow = hybrid_throughput(&gpu_report(90.0), 32768, 0.05, 56, CPU_LONG_KEY_NS);
        assert!(fast.cpu_bound && slow.cpu_bound);
        let gap = (fast.mops - slow.mops).abs() / fast.mops;
        assert!(gap < 0.05, "CPU-bound engines should converge: gap {gap}");
    }

    #[test]
    fn more_cpu_threads_relieve_the_bottleneck() {
        let gpu = gpu_report(170.0);
        let few = hybrid_throughput(&gpu, 32768, 0.10, 8, CPU_LONG_KEY_NS);
        let many = hybrid_throughput(&gpu, 32768, 0.10, 112, CPU_LONG_KEY_NS);
        assert!(many.mops > few.mops);
    }
}
