//! The [`Art`] tree: insert, lookup, remove, iteration and scans.

use crate::node::{Children, Inner, Node};

/// Errors reported by tree mutation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArtError {
    /// The inserted key is a proper prefix of an existing key (or vice
    /// versa). Radix trees over binary-comparable keys require the key set
    /// to be prefix-free; fixed-length keys satisfy this automatically.
    PrefixViolation,
    /// The empty key cannot be stored.
    EmptyKey,
}

impl std::fmt::Display for ArtError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ArtError::PrefixViolation => {
                write!(
                    f,
                    "key set must be prefix-free (one key is a prefix of another)"
                )
            }
            ArtError::EmptyKey => write!(f, "the empty key cannot be stored"),
        }
    }
}

impl std::error::Error for ArtError {}

/// A classic Adaptive Radix Tree mapping byte-string keys to values.
///
/// See the [crate docs](crate) for the key model and examples.
#[derive(Debug, Clone, Default)]
pub struct Art<V> {
    root: Option<Box<Node<V>>>,
    len: usize,
}

/// Length of the longest common prefix of two byte slices.
fn common_prefix_len(a: &[u8], b: &[u8]) -> usize {
    a.iter().zip(b).take_while(|(x, y)| x == y).count()
}

impl<V> Art<V> {
    /// Create an empty tree.
    pub fn new() -> Self {
        Art { root: None, len: 0 }
    }

    /// Assemble a tree from a prebuilt root (bulk loader).
    pub(crate) fn from_parts(root: Option<Box<Node<V>>>, len: usize) -> Self {
        Art { root, len }
    }

    /// Number of keys stored.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` if no keys are stored.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    pub(crate) fn root(&self) -> Option<&Node<V>> {
        self.root.as_deref()
    }

    /// Look up `key`, returning a reference to its value.
    pub fn get(&self, key: &[u8]) -> Option<&V> {
        let mut node = self.root.as_deref()?;
        let mut depth = 0usize;
        loop {
            match node {
                Node::Leaf(leaf) => {
                    return (&*leaf.key == key).then_some(&leaf.value);
                }
                Node::Inner(inner) => {
                    let rest = &key[depth.min(key.len())..];
                    if rest.len() < inner.prefix.len() || !rest.starts_with(&inner.prefix) {
                        return None;
                    }
                    depth += inner.prefix.len();
                    let byte = *key.get(depth)?;
                    node = inner.children.get(byte)?;
                    depth += 1;
                }
            }
        }
    }

    /// Look up `key`, returning a mutable reference to its value.
    pub fn get_mut(&mut self, key: &[u8]) -> Option<&mut V> {
        let mut node = self.root.as_mut()?;
        let mut depth = 0usize;
        loop {
            match node.as_mut() {
                Node::Leaf(leaf) => {
                    return (&*leaf.key == key).then_some(&mut leaf.value);
                }
                Node::Inner(inner) => {
                    let rest = &key[depth.min(key.len())..];
                    if rest.len() < inner.prefix.len() || !rest.starts_with(&inner.prefix) {
                        return None;
                    }
                    depth += inner.prefix.len();
                    let byte = *key.get(depth)?;
                    node = inner.children.get_mut(byte)?;
                    depth += 1;
                }
            }
        }
    }

    /// `true` if `key` is stored.
    pub fn contains_key(&self, key: &[u8]) -> bool {
        self.get(key).is_some()
    }

    /// Insert `key` -> `value`. Returns the previous value if the key was
    /// already present.
    pub fn insert(&mut self, key: &[u8], value: V) -> Result<Option<V>, ArtError> {
        if key.is_empty() {
            return Err(ArtError::EmptyKey);
        }
        match &mut self.root {
            None => {
                self.root = Some(Node::leaf(key, value));
                self.len += 1;
                Ok(None)
            }
            Some(root) => {
                let old = Self::insert_rec(root, key, 0, value)?;
                if old.is_none() {
                    self.len += 1;
                }
                Ok(old)
            }
        }
    }

    fn insert_rec(
        node: &mut Box<Node<V>>,
        key: &[u8],
        depth: usize,
        value: V,
    ) -> Result<Option<V>, ArtError> {
        match node.as_mut() {
            Node::Leaf(leaf) => {
                if &*leaf.key == key {
                    return Ok(Some(std::mem::replace(&mut leaf.value, value)));
                }
                // Split: common prefix from `depth`, then two diverging leaves.
                let lcp = common_prefix_len(&leaf.key[depth..], &key[depth..]);
                let split = depth + lcp;
                if split == key.len() || split == leaf.key.len() {
                    return Err(ArtError::PrefixViolation);
                }
                let prefix: Box<[u8]> = key[depth..split].into();
                let new_byte = key[split];
                // Read the diverging byte while the leaf borrow is live,
                // before the node is replaced out from under it.
                let old_byte = leaf.key[split];
                let placeholder = Box::new(Node::Inner(Inner {
                    prefix,
                    children: Children::new4(),
                }));
                let old_leaf = std::mem::replace(node, placeholder);
                if let Node::Inner(inner) = node.as_mut() {
                    inner.children.insert(old_byte, old_leaf);
                    inner.children.insert(new_byte, Node::leaf(key, value));
                }
                Ok(None)
            }
            Node::Inner(inner) => {
                let rest = &key[depth..];
                let lcp = common_prefix_len(&inner.prefix, rest);
                if lcp < inner.prefix.len() {
                    // Prefix mismatch: split the compressed path at `lcp`.
                    if depth + lcp == key.len() {
                        return Err(ArtError::PrefixViolation);
                    }
                    let head: Box<[u8]> = inner.prefix[..lcp].into();
                    let old_byte = inner.prefix[lcp];
                    let new_byte = key[depth + lcp];
                    inner.prefix = inner.prefix[lcp + 1..].into();
                    let placeholder = Box::new(Node::Inner(Inner {
                        prefix: head,
                        children: Children::new4(),
                    }));
                    let old_node = std::mem::replace(node, placeholder);
                    if let Node::Inner(parent) = node.as_mut() {
                        parent.children.insert(old_byte, old_node);
                        parent.children.insert(new_byte, Node::leaf(key, value));
                    }
                    return Ok(None);
                }
                // Full prefix match; descend.
                let depth = depth + inner.prefix.len();
                if depth >= key.len() {
                    return Err(ArtError::PrefixViolation);
                }
                let byte = key[depth];
                if let Some(child) = inner.children.get_mut(byte) {
                    return Self::insert_rec(child, key, depth + 1, value);
                }
                if inner.children.is_full() {
                    inner.children.grow();
                }
                inner.children.insert(byte, Node::leaf(key, value));
                Ok(None)
            }
        }
    }

    /// Remove `key`, returning its value if present. Collapses and shrinks
    /// nodes on the way back up (classic ART behaviour — in contrast to the
    /// non-structural device-side deletes of CuART §3.3).
    pub fn remove(&mut self, key: &[u8]) -> Option<V> {
        let root = self.root.as_mut()?;
        match root.as_mut() {
            Node::Leaf(leaf) => {
                if &*leaf.key != key {
                    return None;
                }
                // The root was matched as a leaf above; take-and-match
                // treats the impossible shapes as absent, not a panic.
                let value = match self.root.take().map(|node| *node) {
                    Some(Node::Leaf(leaf)) => leaf.value,
                    _ => return None,
                };
                self.len -= 1;
                Some(value)
            }
            Node::Inner(_) => {
                let value = Self::remove_rec(root, key, 0)?;
                self.len -= 1;
                Some(value)
            }
        }
    }

    /// Removes from an *inner* `node`; collapses it if one child remains.
    fn remove_rec(node: &mut Box<Node<V>>, key: &[u8], depth: usize) -> Option<V> {
        let inner = match node.as_mut() {
            Node::Inner(inner) => inner,
            // Both call sites descend only into inner nodes; a leaf here
            // would be a broken invariant — report "not found", don't panic.
            Node::Leaf(_) => return None,
        };
        let rest = &key[depth.min(key.len())..];
        if rest.len() < inner.prefix.len() || !rest.starts_with(&inner.prefix) {
            return None;
        }
        let depth = depth + inner.prefix.len();
        let byte = *key.get(depth)?;
        let child = inner.children.get_mut(byte)?;
        let value = match child.as_mut() {
            Node::Leaf(leaf) => {
                if &*leaf.key != key {
                    return None;
                }
                // `get_mut` just found this child, so `remove` returns it;
                // any other shape is a broken invariant, reported as absent.
                match inner.children.remove(byte).map(|n| *n) {
                    Some(Node::Leaf(leaf)) => leaf.value,
                    _ => return None,
                }
            }
            Node::Inner(_) => Self::remove_rec(child, key, depth + 1)?,
        };
        // Structural cleanup: collapse single-child paths, shrink node type.
        if inner.children.len() == 1 {
            let (only_byte, only_child) = inner.children.take_only_child();
            let mut prefix = std::mem::take(&mut inner.prefix).into_vec();
            prefix.push(only_byte);
            match *only_child {
                Node::Leaf(leaf) => {
                    // A leaf keeps its full key; just replace the node.
                    **node = Node::Leaf(leaf);
                }
                Node::Inner(mut child_inner) => {
                    prefix.extend_from_slice(&child_inner.prefix);
                    child_inner.prefix = prefix.into_boxed_slice();
                    **node = Node::Inner(child_inner);
                }
            }
        } else {
            inner.children.shrink();
        }
        Some(value)
    }

    /// In-order (lexicographic) iterator over `(key, &value)`.
    pub fn iter(&self) -> Iter<'_, V> {
        Iter {
            stack: match &self.root {
                Some(root) => vec![Frame::new(root)],
                None => Vec::new(),
            },
        }
    }

    /// Inclusive range scan: all entries with `lo <= key <= hi`, in order.
    pub fn range(&self, lo: &[u8], hi: &[u8]) -> RangeIter<'_, V> {
        RangeIter {
            inner: self.iter(),
            lo: lo.to_vec(),
            hi: hi.to_vec(),
            done: false,
        }
    }

    /// All entries whose key starts with `prefix`, in order.
    pub fn scan_prefix<'a>(
        &'a self,
        prefix: &'a [u8],
    ) -> impl Iterator<Item = (Vec<u8>, &'a V)> + 'a {
        self.iter()
            .skip_while(move |(k, _)| k.as_slice() < prefix)
            .take_while(move |(k, _)| k.starts_with(prefix))
    }

    /// The smallest key (with value), if any.
    pub fn min(&self) -> Option<(Vec<u8>, &V)> {
        let leaf = self.root.as_deref()?.minimum()?;
        Some((leaf.key.to_vec(), &leaf.value))
    }

    /// The largest key (with value), if any.
    pub fn max(&self) -> Option<(Vec<u8>, &V)> {
        let leaf = self.root.as_deref()?.maximum()?;
        Some((leaf.key.to_vec(), &leaf.value))
    }
}

impl<V> FromIterator<(Vec<u8>, V)> for Art<V> {
    /// Builds a tree from an iterator; panics on prefix violations, so only
    /// use with prefix-free key sets (e.g. fixed-length keys).
    fn from_iter<T: IntoIterator<Item = (Vec<u8>, V)>>(iter: T) -> Self {
        let mut art = Art::new();
        for (k, v) in iter {
            art.insert(&k, v).expect("prefix-free key set"); // cuart-allow: panic-path `FromIterator` cannot surface a `Result`; the panic-on-prefix-violation contract is documented on this impl
        }
        art
    }
}

struct Frame<'a, V> {
    node: &'a Node<V>,
    /// Children in order, populated lazily for inner nodes; `pos` indexes it.
    children: Vec<(u8, &'a Node<V>)>,
    pos: usize,
    visited: bool,
}

impl<'a, V> Frame<'a, V> {
    fn new(node: &'a Node<V>) -> Self {
        Frame {
            node,
            children: Vec::new(),
            pos: 0,
            visited: false,
        }
    }
}

/// In-order iterator over the tree. Yields owned keys (assembled from the
/// compressed paths) and value references.
pub struct Iter<'a, V> {
    stack: Vec<Frame<'a, V>>,
}

impl<'a, V> Iterator for Iter<'a, V> {
    type Item = (Vec<u8>, &'a V);

    fn next(&mut self) -> Option<Self::Item> {
        loop {
            let frame = self.stack.last_mut()?;
            match frame.node {
                Node::Leaf(leaf) => {
                    let item = (leaf.key.to_vec(), &leaf.value);
                    self.stack.pop();
                    return Some(item);
                }
                Node::Inner(inner) => {
                    if !frame.visited {
                        frame.children = inner.children.entries();
                        frame.visited = true;
                    }
                    if frame.pos < frame.children.len() {
                        let (_, child) = frame.children[frame.pos];
                        frame.pos += 1;
                        self.stack.push(Frame::new(child));
                    } else {
                        self.stack.pop();
                    }
                }
            }
        }
    }
}

/// Inclusive range iterator; see [`Art::range`].
pub struct RangeIter<'a, V> {
    inner: Iter<'a, V>,
    lo: Vec<u8>,
    hi: Vec<u8>,
    done: bool,
}

impl<'a, V> Iterator for RangeIter<'a, V> {
    type Item = (Vec<u8>, &'a V);

    fn next(&mut self) -> Option<Self::Item> {
        if self.done {
            return None;
        }
        loop {
            let (k, v) = self.inner.next()?;
            if k.as_slice() < self.lo.as_slice() {
                continue;
            }
            if k.as_slice() > self.hi.as_slice() {
                self.done = true;
                return None;
            }
            return Some((k, v));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    #[test]
    fn empty_tree() {
        let art: Art<u64> = Art::new();
        assert!(art.is_empty());
        assert_eq!(art.get(b"a"), None);
        assert_eq!(art.iter().count(), 0);
        assert_eq!(art.min(), None);
        assert_eq!(art.max(), None);
    }

    #[test]
    fn empty_key_rejected() {
        let mut art = Art::new();
        assert_eq!(art.insert(b"", 1u64), Err(ArtError::EmptyKey));
    }

    #[test]
    fn single_key_roundtrip() {
        let mut art = Art::new();
        assert_eq!(art.insert(b"hello", 42u64).unwrap(), None);
        assert_eq!(art.get(b"hello"), Some(&42));
        assert_eq!(art.get(b"hell"), None);
        assert_eq!(art.get(b"hello!"), None);
        assert_eq!(art.len(), 1);
    }

    #[test]
    fn overwrite_returns_old_value() {
        let mut art = Art::new();
        art.insert(b"k", 1u64).unwrap();
        assert_eq!(art.insert(b"k", 2).unwrap(), Some(1));
        assert_eq!(art.get(b"k"), Some(&2));
        assert_eq!(art.len(), 1);
    }

    #[test]
    fn prefix_violation_detected() {
        let mut art = Art::new();
        art.insert(b"abcd", 1u64).unwrap();
        assert_eq!(art.insert(b"ab", 2), Err(ArtError::PrefixViolation));
        assert_eq!(art.insert(b"abcdef", 3), Err(ArtError::PrefixViolation));
        // Tree is untouched.
        assert_eq!(art.len(), 1);
        assert_eq!(art.get(b"abcd"), Some(&1));
    }

    #[test]
    fn prefix_violation_at_inner_split() {
        let mut art = Art::new();
        art.insert(b"aaaa", 1u64).unwrap();
        art.insert(b"aabb", 2).unwrap();
        // "aa" ends exactly at the inner node's split point.
        assert_eq!(art.insert(b"aa", 3), Err(ArtError::PrefixViolation));
    }

    #[test]
    fn leaf_split_creates_node4() {
        let mut art = Art::new();
        art.insert(b"apple", 1u64).unwrap();
        art.insert(b"apply", 2).unwrap();
        assert_eq!(art.get(b"apple"), Some(&1));
        assert_eq!(art.get(b"apply"), Some(&2));
        assert_eq!(art.get(b"appl"), None);
    }

    #[test]
    fn path_compression_split() {
        let mut art = Art::new();
        art.insert(b"aaaa_1", 1u64).unwrap();
        art.insert(b"aaaa_2", 2).unwrap();
        // Now insert a key diverging inside the compressed prefix "aaa...".
        art.insert(b"ab_xyz", 3).unwrap();
        assert_eq!(art.get(b"aaaa_1"), Some(&1));
        assert_eq!(art.get(b"aaaa_2"), Some(&2));
        assert_eq!(art.get(b"ab_xyz"), Some(&3));
    }

    #[test]
    fn get_mut_updates_value() {
        let mut art = Art::new();
        art.insert(b"key1", 10u64).unwrap();
        *art.get_mut(b"key1").unwrap() = 99;
        assert_eq!(art.get(b"key1"), Some(&99));
        assert!(art.get_mut(b"nope").is_none());
    }

    #[test]
    fn dense_one_byte_keys_grow_to_node256() {
        let mut art = Art::new();
        for b in 0..=255u8 {
            art.insert(&[b], b as u64).unwrap();
        }
        assert_eq!(art.len(), 256);
        for b in 0..=255u8 {
            assert_eq!(art.get(&[b]), Some(&(b as u64)));
        }
        let stats = art.stats();
        assert_eq!(stats.nodes[3], 1, "root should be a Node256");
    }

    #[test]
    fn matches_btreemap_on_fixed_len_keys() {
        let mut art = Art::new();
        let mut model = BTreeMap::new();
        // Deterministic pseudo-random 8-byte keys.
        let mut x = 0x9E3779B97F4A7C15u64;
        for i in 0..4000u64 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let key = x.to_be_bytes();
            art.insert(&key, i).unwrap();
            model.insert(key.to_vec(), i);
        }
        assert_eq!(art.len(), model.len());
        for (k, v) in &model {
            assert_eq!(art.get(k), Some(v));
        }
        // Iteration order matches the sorted model.
        let art_keys: Vec<_> = art.iter().map(|(k, _)| k).collect();
        let model_keys: Vec<_> = model.keys().cloned().collect();
        assert_eq!(art_keys, model_keys);
    }

    #[test]
    fn remove_simple() {
        let mut art = Art::new();
        art.insert(b"aa", 1u64).unwrap();
        art.insert(b"ab", 2).unwrap();
        assert_eq!(art.remove(b"aa"), Some(1));
        assert_eq!(art.remove(b"aa"), None);
        assert_eq!(art.get(b"ab"), Some(&2));
        assert_eq!(art.len(), 1);
        assert_eq!(art.remove(b"ab"), Some(2));
        assert!(art.is_empty());
    }

    #[test]
    fn remove_collapses_paths() {
        let mut art = Art::new();
        art.insert(b"romane", 1u64).unwrap();
        art.insert(b"romanus", 2).unwrap();
        art.insert(b"romulus", 3).unwrap();
        assert_eq!(art.remove(b"romanus"), Some(2));
        // After collapse the remaining keys must still resolve.
        assert_eq!(art.get(b"romane"), Some(&1));
        assert_eq!(art.get(b"romulus"), Some(&3));
        assert_eq!(art.remove(b"romane"), Some(1));
        assert_eq!(art.get(b"romulus"), Some(&3));
        assert_eq!(art.len(), 1);
    }

    #[test]
    fn remove_root_leaf() {
        let mut art = Art::new();
        art.insert(b"only", 7u64).unwrap();
        assert_eq!(art.remove(b"only"), Some(7));
        assert!(art.is_empty());
        assert_eq!(art.get(b"only"), None);
    }

    #[test]
    fn remove_missing_from_deep_tree() {
        let mut art = Art::new();
        for i in 0..100u64 {
            art.insert(&i.to_be_bytes(), i).unwrap();
        }
        assert_eq!(art.remove(&1000u64.to_be_bytes()), None);
        assert_eq!(art.len(), 100);
    }

    #[test]
    fn insert_remove_insert_cycles() {
        let mut art = Art::new();
        for round in 0..3u64 {
            for i in 0..500u64 {
                art.insert(&(i * 7).to_be_bytes(), i + round).unwrap();
            }
            assert_eq!(art.len(), 500);
            for i in 0..500u64 {
                assert_eq!(art.remove(&(i * 7).to_be_bytes()), Some(i + round));
            }
            assert!(art.is_empty());
        }
    }

    #[test]
    fn range_scan_inclusive() {
        let mut art = Art::new();
        for i in 0..100u64 {
            art.insert(&i.to_be_bytes(), i).unwrap();
        }
        let lo = 10u64.to_be_bytes();
        let hi = 20u64.to_be_bytes();
        let hits: Vec<u64> = art.range(&lo, &hi).map(|(_, &v)| v).collect();
        assert_eq!(hits, (10..=20).collect::<Vec<_>>());
    }

    #[test]
    fn range_scan_empty_and_full() {
        let mut art = Art::new();
        for i in 0..10u64 {
            art.insert(&i.to_be_bytes(), i).unwrap();
        }
        let lo = 100u64.to_be_bytes();
        let hi = 200u64.to_be_bytes();
        assert_eq!(art.range(&lo, &hi).count(), 0);
        let lo = 0u64.to_be_bytes();
        let hi = 9u64.to_be_bytes();
        assert_eq!(art.range(&lo, &hi).count(), 10);
    }

    #[test]
    fn prefix_scan() {
        let mut art = Art::new();
        art.insert(b"app/one", 1u64).unwrap();
        art.insert(b"app/two", 2).unwrap();
        art.insert(b"apq/one", 3).unwrap();
        art.insert(b"banana!", 4).unwrap();
        let hits: Vec<_> = art.scan_prefix(b"app/").map(|(k, _)| k).collect();
        assert_eq!(hits, vec![b"app/one".to_vec(), b"app/two".to_vec()]);
        assert_eq!(art.scan_prefix(b"zzz").count(), 0);
    }

    #[test]
    fn min_max() {
        let mut art = Art::new();
        for i in [5u64, 1, 9, 3] {
            art.insert(&i.to_be_bytes(), i).unwrap();
        }
        assert_eq!(art.min().map(|(_, &v)| v), Some(1));
        assert_eq!(art.max().map(|(_, &v)| v), Some(9));
    }

    #[test]
    fn from_iterator() {
        let art: Art<u64> = (0..50u64).map(|i| (i.to_be_bytes().to_vec(), i)).collect();
        assert_eq!(art.len(), 50);
        assert_eq!(art.get(&25u64.to_be_bytes()), Some(&25));
    }

    #[test]
    fn variable_length_prefix_free_keys() {
        let mut art = Art::new();
        // Different lengths, but prefix-free (distinct first byte runs).
        art.insert(b"a1", 1u64).unwrap();
        art.insert(b"b22", 2).unwrap();
        art.insert(b"c333", 3).unwrap();
        art.insert(b"d4444_very_long_key_with_a_tail", 4).unwrap();
        for (k, v) in [
            (&b"a1"[..], 1u64),
            (b"b22", 2),
            (b"c333", 3),
            (b"d4444_very_long_key_with_a_tail", 4),
        ] {
            assert_eq!(art.get(k), Some(&v));
        }
    }
}
