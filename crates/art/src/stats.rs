//! Structural statistics of an [`Art`](crate::Art) tree.
//!
//! Used by the benchmark harness to report node populations (the density
//! effects discussed in §4.4 of the CuART paper) and by the GPU mappers to
//! pre-size their buffers.

use crate::node::{Children, Node};
use crate::tree::Art;
use crate::NodeType;

/// Aggregate structural statistics; see [`Art::stats`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ArtStats {
    /// Number of inner nodes per type, indexed `[N4, N16, N48, N256]`.
    pub nodes: [usize; 4],
    /// Number of leaves.
    pub leaves: usize,
    /// Maximum depth in *nodes* from the root to a leaf (a root-only leaf
    /// has depth 1; the empty tree has depth 0).
    pub max_depth: usize,
    /// Sum over all leaves of their node depth (for `avg_depth`).
    pub total_leaf_depth: usize,
    /// Total bytes held in compressed path prefixes.
    pub prefix_bytes: usize,
    /// Longest single compressed prefix.
    pub max_prefix_len: usize,
    /// Approximate heap footprint of the tree in bytes.
    pub memory_bytes: usize,
}

impl ArtStats {
    /// Total number of inner nodes.
    pub fn inner_nodes(&self) -> usize {
        self.nodes.iter().sum()
    }

    /// Number of inner nodes of the given type.
    pub fn nodes_of(&self, ty: NodeType) -> usize {
        self.nodes[ty as usize - 1]
    }

    /// Average leaf depth in nodes (0.0 for the empty tree).
    pub fn avg_depth(&self) -> f64 {
        if self.leaves == 0 {
            0.0
        } else {
            self.total_leaf_depth as f64 / self.leaves as f64
        }
    }

    /// Average compressed-prefix length per inner node (0.0 when the tree
    /// has no inner nodes — a root-only leaf or the empty tree).
    pub fn avg_prefix_len(&self) -> f64 {
        let inner = self.inner_nodes();
        if inner == 0 {
            0.0
        } else {
            self.prefix_bytes as f64 / inner as f64
        }
    }

    /// Approximate heap bytes per stored key (0.0 for the empty tree).
    pub fn bytes_per_key(&self) -> f64 {
        if self.leaves == 0 {
            0.0
        } else {
            self.memory_bytes as f64 / self.leaves as f64
        }
    }

    /// Fraction of inner nodes of the given type (0.0 when there are no
    /// inner nodes, rather than NaN).
    pub fn node_fraction(&self, ty: NodeType) -> f64 {
        let inner = self.inner_nodes();
        if inner == 0 {
            0.0
        } else {
            self.nodes_of(ty) as f64 / inner as f64
        }
    }
}

fn children_struct_bytes<V>(c: &Children<V>) -> usize {
    // Approximate per-variant footprint, mirroring the sizes the ART paper
    // reports (e.g. ~656 B for N48, ~2 KB for N256).
    match c {
        Children::Node4 { .. } => 4 + 4 * 8 + 8,
        Children::Node16 { .. } => 16 + 16 * 8 + 8,
        Children::Node48 { .. } => 256 + 48 * 8 + 8,
        Children::Node256 { .. } => 256 * 8 + 8,
    }
}

fn walk<V>(node: &Node<V>, depth: usize, stats: &mut ArtStats) {
    match node {
        Node::Leaf(leaf) => {
            stats.leaves += 1;
            stats.max_depth = stats.max_depth.max(depth);
            stats.total_leaf_depth += depth;
            stats.memory_bytes += std::mem::size_of::<Node<V>>() + leaf.key.len();
        }
        Node::Inner(inner) => {
            stats.nodes[inner.children.node_type() as usize - 1] += 1;
            stats.prefix_bytes += inner.prefix.len();
            stats.max_prefix_len = stats.max_prefix_len.max(inner.prefix.len());
            stats.memory_bytes += std::mem::size_of::<Node<V>>()
                + inner.prefix.len()
                + children_struct_bytes(&inner.children);
            inner.children.for_each(|_, c| walk(c, depth + 1, stats));
        }
    }
}

impl<V> Art<V> {
    /// Compute structural statistics by walking the whole tree.
    pub fn stats(&self) -> ArtStats {
        let mut stats = ArtStats::default();
        if let Some(root) = self.root() {
            walk(root, 1, &mut stats);
        }
        stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_tree_stats() {
        let art: Art<u64> = Art::new();
        let s = art.stats();
        assert_eq!(s, ArtStats::default());
        // Every derived ratio must be a well-defined 0.0 — never NaN — so
        // the figure harness can divide by nothing without poisoning CSVs.
        assert_eq!(s.avg_depth(), 0.0);
        assert_eq!(s.avg_prefix_len(), 0.0);
        assert_eq!(s.bytes_per_key(), 0.0);
        for ty in [NodeType::N4, NodeType::N16, NodeType::N48, NodeType::N256] {
            assert_eq!(s.node_fraction(ty), 0.0);
        }
    }

    #[test]
    fn derived_ratios_on_leaf_only_tree() {
        // A single root leaf has no inner nodes: prefix and node-fraction
        // ratios hit the zero denominator while leaves != 0.
        let mut art = Art::new();
        art.insert(b"solo", 9u64).unwrap();
        let s = art.stats();
        assert_eq!(s.avg_prefix_len(), 0.0);
        assert_eq!(s.node_fraction(NodeType::N4), 0.0);
        assert!(s.bytes_per_key() > 0.0);
        assert!(s.bytes_per_key().is_finite());
    }

    #[test]
    fn derived_ratios_populated_tree() {
        let mut art = Art::new();
        art.insert(b"prefix_a", 1u64).unwrap();
        art.insert(b"prefix_b", 2).unwrap();
        let s = art.stats();
        assert_eq!(s.avg_prefix_len(), s.prefix_bytes as f64);
        assert_eq!(s.node_fraction(NodeType::N4), 1.0);
        let total: f64 = [NodeType::N4, NodeType::N16, NodeType::N48, NodeType::N256]
            .iter()
            .map(|&t| s.node_fraction(t))
            .sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn single_leaf_stats() {
        let mut art = Art::new();
        art.insert(b"hello", 1u64).unwrap();
        let s = art.stats();
        assert_eq!(s.leaves, 1);
        assert_eq!(s.inner_nodes(), 0);
        assert_eq!(s.max_depth, 1);
        assert_eq!(s.avg_depth(), 1.0);
    }

    #[test]
    fn two_leaves_one_node4() {
        let mut art = Art::new();
        art.insert(b"aa", 1u64).unwrap();
        art.insert(b"ab", 2).unwrap();
        let s = art.stats();
        assert_eq!(s.leaves, 2);
        assert_eq!(s.nodes_of(NodeType::N4), 1);
        assert_eq!(s.max_depth, 2);
        // The shared 'a' is path-compressed into the root node.
        assert_eq!(s.prefix_bytes, 1);
        assert_eq!(s.max_prefix_len, 1);
    }

    #[test]
    fn node_populations_match_key_structure() {
        // 300 keys sharing byte 0, diverging at byte 1 -> one N256 root
        // (256 distinct second bytes won't fit; use 2-byte spread).
        let mut art = Art::new();
        for i in 0..300u64 {
            let k = [0u8, (i / 256) as u8, (i % 256) as u8, 7];
            art.insert(&k, i).unwrap();
        }
        let s = art.stats();
        assert_eq!(s.leaves, 300);
        assert!(s.inner_nodes() >= 2);
        assert!(s.memory_bytes > 300 * 4);
    }

    #[test]
    fn depth_accounts_for_levels() {
        let mut art = Art::new();
        // Keys diverging at the last byte -> depth 2 thanks to compression.
        art.insert(b"long_common_prefix_a", 1u64).unwrap();
        art.insert(b"long_common_prefix_b", 2).unwrap();
        let s = art.stats();
        assert_eq!(s.max_depth, 2);
        assert_eq!(s.max_prefix_len, "long_common_prefix_".len());
    }
}
