//! Read-only structural views of an [`Art`](crate::Art) tree.
//!
//! The GPU layout crates (`cuart-grt`, `cuart`) flatten the pointer-based
//! tree into device buffers. They need to see the structure — node types,
//! compressed prefixes, child bytes, leaf keys — without this crate leaking
//! its private node representation. [`NodeView`] is that stable façade.
//!
//! Views borrow from the tree; mapping is a read-only in-order traversal,
//! exactly the procedure §3.2.1 of the CuART paper describes.

use crate::node::{Inner, Leaf, Node};
use crate::tree::Art;
use crate::NodeType;

/// A borrowed view of one tree node.
pub enum NodeView<'a, V> {
    /// An inner node (one of the four adaptive sizes).
    Inner(InnerView<'a, V>),
    /// A leaf holding a complete key and its value.
    Leaf(LeafView<'a, V>),
}

/// Borrowed view of an inner node.
pub struct InnerView<'a, V> {
    inner: &'a Inner<V>,
}

/// Borrowed view of a leaf.
pub struct LeafView<'a, V> {
    leaf: &'a Leaf<V>,
}

impl<'a, V> NodeView<'a, V> {
    pub(crate) fn new(node: &'a Node<V>) -> Self {
        match node {
            Node::Inner(inner) => NodeView::Inner(InnerView { inner }),
            Node::Leaf(leaf) => NodeView::Leaf(LeafView { leaf }),
        }
    }

    /// `true` if this is a leaf view.
    pub fn is_leaf(&self) -> bool {
        matches!(self, NodeView::Leaf(_))
    }
}

impl<'a, V> InnerView<'a, V> {
    /// The adaptive node type.
    pub fn node_type(&self) -> NodeType {
        self.inner.children.node_type()
    }

    /// The full compressed path prefix of this node.
    pub fn prefix(&self) -> &'a [u8] {
        &self.inner.prefix
    }

    /// Number of children.
    pub fn child_count(&self) -> usize {
        self.inner.children.len()
    }

    /// Children in ascending key-byte order.
    pub fn children(&self) -> Vec<(u8, NodeView<'a, V>)> {
        self.inner
            .children
            .entries()
            .into_iter()
            .map(|(b, n)| (b, NodeView::new(n)))
            .collect()
    }
}

impl<'a, V> LeafView<'a, V> {
    /// The complete stored key.
    pub fn key(&self) -> &'a [u8] {
        &self.leaf.key
    }

    /// The stored value.
    pub fn value(&self) -> &'a V {
        &self.leaf.value
    }
}

impl<V> Art<V> {
    /// A view of the root node, if the tree is non-empty.
    pub fn root_view(&self) -> Option<NodeView<'_, V>> {
        self.root().map(NodeView::new)
    }

    /// Depth-first, in-order walk over all nodes, invoking `f` with each
    /// node view, the depth in consumed key bytes at which the node begins,
    /// and the byte path leading to it. Children are visited in ascending
    /// key-byte order, so leaves appear in lexicographic key order — the
    /// property CuART's leaf buffers rely on for range queries.
    pub fn walk<'a>(&'a self, mut f: impl FnMut(&NodeView<'a, V>, usize)) {
        fn rec<'a, V>(
            node: &'a Node<V>,
            depth: usize,
            f: &mut impl FnMut(&NodeView<'a, V>, usize),
        ) {
            let view = NodeView::new(node);
            f(&view, depth);
            if let Node::Inner(inner) = node {
                let child_depth = depth + inner.prefix.len() + 1;
                inner.children.for_each(|_, c| rec(c, child_depth, f));
            }
        }
        if let Some(root) = self.root() {
            rec(root, 0, &mut f);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Art<u64> {
        let mut art = Art::new();
        art.insert(b"romane", 1).unwrap();
        art.insert(b"romanus", 2).unwrap();
        art.insert(b"romulus", 3).unwrap();
        art
    }

    #[test]
    fn empty_tree_has_no_root_view() {
        let art: Art<u64> = Art::new();
        assert!(art.root_view().is_none());
    }

    #[test]
    fn root_view_exposes_structure() {
        let art = sample();
        let root = art.root_view().unwrap();
        match root {
            NodeView::Inner(inner) => {
                // All three keys share "rom".
                assert_eq!(inner.prefix(), b"rom");
                assert_eq!(inner.node_type(), NodeType::N4);
                assert_eq!(inner.child_count(), 2);
                let bytes: Vec<u8> = inner.children().iter().map(|(b, _)| *b).collect();
                assert_eq!(bytes, vec![b'a', b'u']);
            }
            NodeView::Leaf(_) => panic!("expected inner root"),
        }
    }

    #[test]
    fn walk_visits_leaves_in_key_order() {
        let art = sample();
        let mut leaves = Vec::new();
        art.walk(|view, _| {
            if let NodeView::Leaf(l) = view {
                leaves.push(l.key().to_vec());
            }
        });
        assert_eq!(
            leaves,
            vec![b"romane".to_vec(), b"romanus".to_vec(), b"romulus".to_vec()]
        );
    }

    #[test]
    fn walk_reports_consumed_depth() {
        let mut art = Art::new();
        art.insert(b"abcX1", 1u64).unwrap();
        art.insert(b"abcY2", 2).unwrap();
        let mut depths = Vec::new();
        art.walk(|view, depth| {
            if !view.is_leaf() {
                depths.push(depth);
            }
        });
        // Root inner node begins at depth 0 and compresses "abc".
        assert_eq!(depths, vec![0]);
        let mut leaf_depths = Vec::new();
        art.walk(|view, depth| {
            if view.is_leaf() {
                leaf_depths.push(depth);
            }
        });
        // Leaves begin after "abc" + 1 divergence byte = 4 consumed bytes.
        assert_eq!(leaf_depths, vec![4, 4]);
    }

    #[test]
    fn single_leaf_tree_walk() {
        let mut art = Art::new();
        art.insert(b"solo", 9u64).unwrap();
        let mut count = 0;
        art.walk(|view, depth| {
            assert!(view.is_leaf());
            assert_eq!(depth, 0);
            count += 1;
        });
        assert_eq!(count, 1);
    }
}
