//! # cuart-art — the classic Adaptive Radix Tree
//!
//! A faithful, pointer-based CPU implementation of the Adaptive Radix Tree
//! (ART) as described by Leis, Kemper and Neumann, *"The adaptive radix tree:
//! ARTful indexing for main-memory databases"*, ICDE 2013.
//!
//! This crate is the **baseline** of the CuART reproduction (ICPP 2021):
//! it is the structure the paper's Figure 7 and Figure 17 compare against,
//! and it is the *source* structure from which both GPU layouts (the packed
//! single-buffer GRT and the structure-of-buffers CuART) are mapped.
//!
//! ## Features
//!
//! * the four adaptive node sizes — [`NodeType::N4`], [`NodeType::N16`],
//!   [`NodeType::N48`], [`NodeType::N256`] — with growth and shrinkage,
//! * pessimistic path compression (the full compressed prefix is stored in
//!   each inner node, so traversal never needs to re-check the key against
//!   leaf contents),
//! * lazy expansion (single-value leaves storing the full key),
//! * point lookups, inserts, removals, in-order iteration, inclusive range
//!   scans and prefix scans,
//! * a read-only [`view`] module exposing the structure of the tree so other
//!   crates can map it into GPU buffer layouts,
//! * [`stats`] describing node populations, depth and memory footprint.
//!
//! ## Key model
//!
//! Keys are arbitrary byte strings with one classic radix-tree restriction:
//! **no stored key may be a proper prefix of another stored key**. (This is
//! the standard ART requirement for binary-comparable keys; fixed-length
//! keys — the only kind used in the paper's evaluation — satisfy it
//! trivially.) Violations are reported as [`ArtError::PrefixViolation`]
//! instead of silently corrupting the tree.
//!
//! ## Quick example
//!
//! ```
//! use cuart_art::Art;
//!
//! let mut art = Art::new();
//! art.insert(b"romane", 1u64).unwrap();
//! art.insert(b"romanus", 2).unwrap();
//! art.insert(b"romulus", 3).unwrap();
//!
//! assert_eq!(art.get(b"romanus"), Some(&2));
//! assert_eq!(art.len(), 3);
//!
//! // Range scans are inclusive and yield keys in lexicographic order.
//! let hits: Vec<_> = art.range(b"romane", b"romanus").map(|(k, _)| k).collect();
//! assert_eq!(hits, vec![b"romane".to_vec(), b"romanus".to_vec()]);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod bulk;
mod node;
mod tree;

pub mod stats;
pub mod view;

pub use node::NodeType;
pub use stats::ArtStats;
pub use tree::{Art, ArtError, Iter, RangeIter};
