//! Bulk-loading a tree from sorted input.
//!
//! The paper's benchmark pipeline (§4.1) populates the ART by repeated
//! insertion before every experiment — the dominant setup cost at large
//! tree sizes. For sorted, prefix-free input the tree can instead be built
//! bottom-up in one pass per level: split the key run at the first
//! diverging byte position, emit the node for the split, recurse into each
//! group. No node ever grows or splits, so construction touches each key
//! once.

use crate::node::{Children, Inner, Node};
use crate::tree::{Art, ArtError};

impl<V> Art<V> {
    /// Build a tree from **strictly sorted, prefix-free** `(key, value)`
    /// pairs in a single pass. Equivalent to inserting in order but
    /// without any node growth or path splitting.
    ///
    /// Errors with [`ArtError::PrefixViolation`] if a key is a prefix of
    /// its successor, [`ArtError::EmptyKey`] on an empty key, and panics
    /// if the input is not strictly sorted (a programming error, since
    /// sortedness is this API's contract).
    pub fn from_sorted(pairs: Vec<(Vec<u8>, V)>) -> Result<Self, ArtError> {
        if pairs.is_empty() {
            return Ok(Art::new());
        }
        for w in pairs.windows(2) {
            assert!(w[0].0 < w[1].0, "from_sorted requires strictly sorted keys");
        }
        for (k, _) in &pairs {
            if k.is_empty() {
                return Err(ArtError::EmptyKey);
            }
        }
        for w in pairs.windows(2) {
            if w[1].0.starts_with(&w[0].0) {
                return Err(ArtError::PrefixViolation);
            }
        }
        let len = pairs.len();
        let root = build_group(pairs, 0)?;
        Ok(Art::from_parts(Some(root), len))
    }
}

/// Child groups during bottom-up construction: branch byte -> sorted run.
type ChildGroups<V> = Vec<(u8, Vec<(Vec<u8>, V)>)>;

/// Build the subtree for a sorted run of keys agreeing on the first
/// `depth` bytes.
fn build_group<V>(mut pairs: Vec<(Vec<u8>, V)>, depth: usize) -> Result<Box<Node<V>>, ArtError> {
    if pairs.len() <= 1 {
        // A run of one key becomes a leaf. `pop` doubles as the emptiness
        // check: callers only form non-empty groups, but an empty run maps
        // to a typed error rather than a panicking unwrap.
        let (key, value) = pairs.pop().ok_or(ArtError::EmptyKey)?;
        return Ok(Box::new(Node::Leaf(crate::node::Leaf {
            key: key.into_boxed_slice(),
            value,
        })));
    }
    // Longest common prefix from `depth` across the (sorted) run: it is
    // the LCP of the first and last keys, both present since len >= 2.
    let (Some(first), Some(last)) = (pairs.first(), pairs.last()) else {
        return Err(ArtError::EmptyKey);
    };
    let lcp = first.0[depth..]
        .iter()
        .zip(&last.0[depth..])
        .take_while(|(a, b)| a == b)
        .count();
    let split = depth + lcp;
    // Prefix-free sorted input guarantees every key extends past `split`
    // (a key ending exactly at split would prefix its successors).
    if pairs.iter().any(|(k, _)| k.len() <= split) {
        return Err(ArtError::PrefixViolation);
    }
    let prefix: Box<[u8]> = pairs[0].0[depth..split].into();
    // Partition by the byte at `split` (contiguous in sorted order).
    let mut children: ChildGroups<V> = Vec::new();
    for pair in pairs {
        let byte = pair.0[split];
        match children.last_mut() {
            Some((b, group)) if *b == byte => group.push(pair),
            _ => children.push((byte, vec![pair])),
        }
    }
    // Pick the adaptive node size for the fan-out and fill it directly.
    let mut node_children = Children::new4();
    while node_children.node_type().capacity() < children.len() {
        node_children.grow();
    }
    for (byte, group) in children {
        let child = build_group(group, split + 1)?;
        node_children.insert(byte, child);
    }
    Ok(Box::new(Node::Inner(Inner {
        prefix,
        children: node_children,
    })))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_input() {
        let art = Art::<u64>::from_sorted(Vec::new()).unwrap();
        assert!(art.is_empty());
    }

    #[test]
    fn matches_incremental_build() {
        let mut keys: Vec<Vec<u8>> = (0..5000u64)
            .map(|i| i.wrapping_mul(0x9E3779B97F4A7C15).to_be_bytes().to_vec())
            .collect();
        keys.sort();
        keys.dedup();
        let pairs: Vec<(Vec<u8>, u64)> = keys
            .iter()
            .enumerate()
            .map(|(i, k)| (k.clone(), i as u64))
            .collect();
        let bulk = Art::from_sorted(pairs.clone()).unwrap();
        let mut incremental = Art::new();
        for (k, v) in &pairs {
            incremental.insert(k, *v).unwrap();
        }
        assert_eq!(bulk.len(), incremental.len());
        for (k, v) in &pairs {
            assert_eq!(bulk.get(k), Some(v));
        }
        // Same structure: identical node populations and iteration order.
        assert_eq!(bulk.stats(), incremental.stats());
        let a: Vec<_> = bulk.iter().map(|(k, _)| k).collect();
        let b: Vec<_> = incremental.iter().map(|(k, _)| k).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn variable_length_prefix_free() {
        let pairs = vec![
            (b"alpha!".to_vec(), 1u64),
            (b"beta".to_vec(), 2),
            (b"gamma_long_key".to_vec(), 3),
        ];
        let art = Art::from_sorted(pairs).unwrap();
        assert_eq!(art.get(b"beta"), Some(&2));
        assert_eq!(art.len(), 3);
    }

    #[test]
    fn prefix_violation_rejected() {
        let pairs = vec![(b"ab".to_vec(), 1u64), (b"abc".to_vec(), 2)];
        assert_eq!(
            Art::from_sorted(pairs).unwrap_err(),
            ArtError::PrefixViolation
        );
    }

    #[test]
    fn empty_key_rejected() {
        let pairs = vec![(Vec::new(), 1u64)];
        assert_eq!(Art::from_sorted(pairs).unwrap_err(), ArtError::EmptyKey);
    }

    #[test]
    #[should_panic(expected = "strictly sorted")]
    fn unsorted_input_panics() {
        let pairs = vec![(b"b".to_vec(), 1u64), (b"a".to_vec(), 2)];
        let _ = Art::from_sorted(pairs);
    }

    #[test]
    fn dense_fanout_picks_large_nodes() {
        let pairs: Vec<(Vec<u8>, u64)> = (0..=255u8).map(|b| (vec![b, 1], b as u64)).collect();
        let art = Art::from_sorted(pairs).unwrap();
        let stats = art.stats();
        assert_eq!(stats.nodes[3], 1, "single N256 root expected");
        assert_eq!(stats.leaves, 256);
    }
}
