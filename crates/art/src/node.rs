//! Internal node representation of the classic ART.
//!
//! The four adaptive inner-node kinds from the ART paper are represented as
//! one enum, [`Children`], wrapped together with the compressed path prefix
//! in [`Inner`]. Leaves store the complete key (lazy expansion), so inner
//! traversal never needs to consult more than the compressed prefixes.

/// The four adaptive inner-node sizes of the ART paper (§III.A of Leis et
/// al. 2013). The numeric discriminants match the node-type tags CuART packs
/// into its 64-bit node links (1..=4), see the `cuart` crate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum NodeType {
    /// Up to 4 children; sorted key array + child array.
    N4 = 1,
    /// Up to 16 children; sorted key array + child array (SIMD-searchable).
    N16 = 2,
    /// Up to 48 children; 256-entry child index + dense child array.
    N48 = 3,
    /// Up to 256 children; direct array indexed by key byte.
    N256 = 4,
}

impl NodeType {
    /// Maximum number of children a node of this type can hold.
    pub fn capacity(self) -> usize {
        match self {
            NodeType::N4 => 4,
            NodeType::N16 => 16,
            NodeType::N48 => 48,
            NodeType::N256 => 256,
        }
    }

    /// Minimum number of children before the node shrinks to the next
    /// smaller type (classic ART underflow thresholds).
    pub fn min_children(self) -> usize {
        match self {
            NodeType::N4 => 2,
            NodeType::N16 => 5,
            NodeType::N48 => 17,
            NodeType::N256 => 49,
        }
    }

    /// All node types in growing order.
    pub const ALL: [NodeType; 4] = [NodeType::N4, NodeType::N16, NodeType::N48, NodeType::N256];
}

/// A tree node: either a single-value leaf (lazy expansion) or an inner node.
// The size gap between the variants is deliberate: `Node` is always behind
// a `Box`, and splitting `Inner` further would add an indirection per
// traversal step.
#[derive(Debug, Clone)]
#[allow(clippy::large_enum_variant)]
pub(crate) enum Node<V> {
    Leaf(Leaf<V>),
    Inner(Inner<V>),
}

/// Leaf storing the complete key and its value.
#[derive(Debug, Clone)]
pub(crate) struct Leaf<V> {
    pub key: Box<[u8]>,
    pub value: V,
}

/// Inner node: compressed path prefix + adaptive child collection.
#[derive(Debug, Clone)]
pub(crate) struct Inner<V> {
    /// Pessimistic path compression: the *full* run of key bytes this node
    /// compresses is stored (no optimistic skipping on the CPU baseline).
    pub prefix: Box<[u8]>,
    pub children: Children<V>,
}

type Child<V> = Box<Node<V>>;

/// The adaptive child collection, one variant per ART node size.
#[derive(Debug, Clone)]
pub(crate) enum Children<V> {
    Node4 {
        len: u8,
        keys: [u8; 4],
        ptrs: [Option<Child<V>>; 4],
    },
    Node16 {
        len: u8,
        keys: [u8; 16],
        ptrs: [Option<Child<V>>; 16],
    },
    Node48 {
        len: u8,
        /// Maps key byte -> slot in `ptrs`; `EMPTY48` marks absence.
        index: [u8; 256],
        ptrs: Box<[Option<Child<V>>; 48]>,
    },
    Node256 {
        len: u16,
        ptrs: Box<[Option<Child<V>>; 256]>,
    },
}

pub(crate) const EMPTY48: u8 = 0xFF;

impl<V> Children<V> {
    pub fn new4() -> Self {
        Children::Node4 {
            len: 0,
            keys: [0; 4],
            ptrs: [const { None }; 4],
        }
    }

    pub fn node_type(&self) -> NodeType {
        match self {
            Children::Node4 { .. } => NodeType::N4,
            Children::Node16 { .. } => NodeType::N16,
            Children::Node48 { .. } => NodeType::N48,
            Children::Node256 { .. } => NodeType::N256,
        }
    }

    pub fn len(&self) -> usize {
        match self {
            Children::Node4 { len, .. }
            | Children::Node16 { len, .. }
            | Children::Node48 { len, .. } => *len as usize,
            Children::Node256 { len, .. } => *len as usize,
        }
    }

    pub fn is_full(&self) -> bool {
        self.len() == self.node_type().capacity()
    }

    /// Borrow the child for `byte`, if present.
    pub fn get(&self, byte: u8) -> Option<&Node<V>> {
        match self {
            Children::Node4 { len, keys, ptrs } => keys[..*len as usize]
                .iter()
                .position(|&k| k == byte)
                .and_then(|i| ptrs[i].as_deref()),
            Children::Node16 { len, keys, ptrs } => keys[..*len as usize]
                .binary_search(&byte)
                .ok()
                .and_then(|i| ptrs[i].as_deref()),
            Children::Node48 { index, ptrs, .. } => {
                let slot = index[byte as usize];
                if slot == EMPTY48 {
                    None
                } else {
                    ptrs[slot as usize].as_deref()
                }
            }
            Children::Node256 { ptrs, .. } => ptrs[byte as usize].as_deref(),
        }
    }

    /// Mutably borrow the child for `byte`, if present.
    pub fn get_mut(&mut self, byte: u8) -> Option<&mut Child<V>> {
        match self {
            Children::Node4 { len, keys, ptrs } => keys[..*len as usize]
                .iter()
                .position(|&k| k == byte)
                .and_then(|i| ptrs[i].as_mut()),
            Children::Node16 { len, keys, ptrs } => keys[..*len as usize]
                .binary_search(&byte)
                .ok()
                .and_then(|i| ptrs[i].as_mut()),
            Children::Node48 { index, ptrs, .. } => {
                let slot = index[byte as usize];
                if slot == EMPTY48 {
                    None
                } else {
                    ptrs[slot as usize].as_mut()
                }
            }
            Children::Node256 { ptrs, .. } => ptrs[byte as usize].as_mut(),
        }
    }

    /// Insert a child for `byte`. The caller must have grown the node if it
    /// was full; panics on overflow or duplicate key byte (both indicate a
    /// logic error in the tree code, not bad user input).
    pub fn insert(&mut self, byte: u8, child: Child<V>) {
        debug_assert!(self.get(byte).is_none(), "duplicate child byte {byte}");
        match self {
            Children::Node4 { len, keys, ptrs } => {
                let n = *len as usize;
                assert!(n < 4, "Node4 overflow");
                let pos = keys[..n].iter().position(|&k| k > byte).unwrap_or(n);
                keys[pos..n + 1].rotate_right(1);
                ptrs[pos..n + 1].rotate_right(1);
                keys[pos] = byte;
                ptrs[pos] = Some(child);
                *len += 1;
            }
            Children::Node16 { len, keys, ptrs } => {
                let n = *len as usize;
                assert!(n < 16, "Node16 overflow");
                let pos = keys[..n].iter().position(|&k| k > byte).unwrap_or(n);
                keys[pos..n + 1].rotate_right(1);
                ptrs[pos..n + 1].rotate_right(1);
                keys[pos] = byte;
                ptrs[pos] = Some(child);
                *len += 1;
            }
            Children::Node48 { len, index, ptrs } => {
                let n = *len as usize;
                assert!(n < 48, "Node48 overflow");
                let slot = ptrs.iter().position(|p| p.is_none()).expect("free slot"); // cuart-allow: panic-path `n < 48` is asserted above so a free slot exists; a miss is a broken len/ptrs invariant, covered by this method's documented panic-on-logic-error contract
                ptrs[slot] = Some(child);
                index[byte as usize] = slot as u8;
                *len += 1;
            }
            Children::Node256 { len, ptrs } => {
                assert!((*len as usize) < 256, "Node256 overflow");
                ptrs[byte as usize] = Some(child);
                *len += 1;
            }
        }
    }

    /// Remove and return the child for `byte`, if present.
    pub fn remove(&mut self, byte: u8) -> Option<Child<V>> {
        match self {
            Children::Node4 { len, keys, ptrs } => {
                let n = *len as usize;
                let pos = keys[..n].iter().position(|&k| k == byte)?;
                let child = ptrs[pos].take();
                keys[pos..n].rotate_left(1);
                ptrs[pos..n].rotate_left(1);
                *len -= 1;
                child
            }
            Children::Node16 { len, keys, ptrs } => {
                let n = *len as usize;
                let pos = keys[..n].binary_search(&byte).ok()?;
                let child = ptrs[pos].take();
                keys[pos..n].rotate_left(1);
                ptrs[pos..n].rotate_left(1);
                *len -= 1;
                child
            }
            Children::Node48 { len, index, ptrs } => {
                let slot = index[byte as usize];
                if slot == EMPTY48 {
                    return None;
                }
                index[byte as usize] = EMPTY48;
                let child = ptrs[slot as usize].take();
                *len -= 1;
                child
            }
            Children::Node256 { len, ptrs } => {
                let child = ptrs[byte as usize].take()?;
                *len -= 1;
                Some(child)
            }
        }
    }

    /// Grow to the next larger node type, moving all children over.
    pub fn grow(&mut self) {
        let old = std::mem::replace(self, Children::new4());
        *self = match old {
            Children::Node4 {
                len,
                keys,
                mut ptrs,
            } => {
                let mut nkeys = [0u8; 16];
                let mut nptrs = [const { None }; 16];
                for i in 0..len as usize {
                    nkeys[i] = keys[i];
                    nptrs[i] = ptrs[i].take();
                }
                Children::Node16 {
                    len,
                    keys: nkeys,
                    ptrs: nptrs,
                }
            }
            Children::Node16 {
                len,
                keys,
                mut ptrs,
            } => {
                let mut index = [EMPTY48; 256];
                let mut nptrs = Box::new([const { None }; 48]);
                for i in 0..len as usize {
                    index[keys[i] as usize] = i as u8;
                    nptrs[i] = ptrs[i].take();
                }
                Children::Node48 {
                    len,
                    index,
                    ptrs: nptrs,
                }
            }
            Children::Node48 {
                len,
                index,
                mut ptrs,
            } => {
                let mut nptrs = Box::new([const { None }; 256]);
                for (byte, &slot) in index.iter().enumerate() {
                    if slot != EMPTY48 {
                        nptrs[byte] = ptrs[slot as usize].take();
                    }
                }
                Children::Node256 {
                    len: len as u16,
                    ptrs: nptrs,
                }
            }
            full @ Children::Node256 { .. } => full,
        };
    }

    /// Shrink to the next smaller node type if below the underflow
    /// threshold. Returns `true` if a shrink happened.
    pub fn shrink(&mut self) -> bool {
        let ty = self.node_type();
        if ty == NodeType::N4 || self.len() >= ty.min_children() {
            return false;
        }
        let old = std::mem::replace(self, Children::new4());
        *self = match old {
            Children::Node16 {
                len,
                keys,
                mut ptrs,
            } => {
                let mut nkeys = [0u8; 4];
                let mut nptrs = [const { None }; 4];
                for i in 0..len as usize {
                    nkeys[i] = keys[i];
                    nptrs[i] = ptrs[i].take();
                }
                Children::Node4 {
                    len,
                    keys: nkeys,
                    ptrs: nptrs,
                }
            }
            Children::Node48 {
                len,
                index,
                mut ptrs,
            } => {
                let mut nkeys = [0u8; 16];
                let mut nptrs = [const { None }; 16];
                let mut n = 0;
                for (byte, &slot) in index.iter().enumerate() {
                    if slot != EMPTY48 {
                        nkeys[n] = byte as u8;
                        nptrs[n] = ptrs[slot as usize].take();
                        n += 1;
                    }
                }
                debug_assert_eq!(n, len as usize);
                Children::Node16 {
                    len,
                    keys: nkeys,
                    ptrs: nptrs,
                }
            }
            Children::Node256 { len, mut ptrs } => {
                let mut index = [EMPTY48; 256];
                let mut nptrs = Box::new([const { None }; 48]);
                let mut n = 0;
                for (byte, slot) in ptrs.iter_mut().enumerate() {
                    if slot.is_some() {
                        index[byte] = n as u8;
                        nptrs[n] = slot.take();
                        n += 1;
                    }
                }
                debug_assert_eq!(n, len as usize);
                Children::Node48 {
                    len: len as u8,
                    index,
                    ptrs: nptrs,
                }
            }
            small @ Children::Node4 { .. } => small,
        };
        true
    }

    /// Visit children in ascending key-byte order.
    pub fn for_each<'a>(&'a self, mut f: impl FnMut(u8, &'a Node<V>)) {
        match self {
            Children::Node4 { len, keys, ptrs } => {
                for i in 0..*len as usize {
                    if let Some(c) = ptrs[i].as_deref() {
                        f(keys[i], c);
                    }
                }
            }
            Children::Node16 { len, keys, ptrs } => {
                for i in 0..*len as usize {
                    if let Some(c) = ptrs[i].as_deref() {
                        f(keys[i], c);
                    }
                }
            }
            Children::Node48 { index, ptrs, .. } => {
                for (byte, &slot) in index.iter().enumerate() {
                    if slot == EMPTY48 {
                        continue;
                    }
                    if let Some(c) = ptrs[slot as usize].as_deref() {
                        f(byte as u8, c);
                    }
                }
            }
            Children::Node256 { ptrs, .. } => {
                for byte in 0..256usize {
                    if let Some(c) = ptrs[byte].as_deref() {
                        f(byte as u8, c);
                    }
                }
            }
        }
    }

    /// Children in ascending key-byte order, collected (used by mappers and
    /// the shrink/collapse paths where borrows get tangled otherwise).
    pub fn entries(&self) -> Vec<(u8, &Node<V>)> {
        let mut out = Vec::with_capacity(self.len());
        self.for_each(|b, c| out.push((b, c)));
        out
    }

    /// Remove the single remaining child (used when collapsing a path).
    /// Panics unless exactly one child remains.
    pub fn take_only_child(&mut self) -> (u8, Child<V>) {
        assert_eq!(
            self.len(),
            1,
            "take_only_child on node with {} children",
            self.len()
        );
        let byte = match self {
            Children::Node4 { keys, .. } => keys[0],
            Children::Node16 { keys, .. } => keys[0],
            Children::Node48 { index, .. } => {
                let slot = index.iter().position(|&s| s != EMPTY48);
                slot.expect("one child") as u8 // cuart-allow: panic-path `len() == 1` is asserted above so one index slot is occupied; a miss is a corrupt index, covered by this method's documented panic contract
            }
            Children::Node256 { ptrs, .. } => {
                ptrs.iter().position(|p| p.is_some()).expect("one child") as u8 // cuart-allow: panic-path `len() == 1` is asserted above so one pointer is occupied; a miss is a corrupt ptrs array, covered by this method's documented panic contract
            }
        };
        let child = self.remove(byte).expect("child present"); // cuart-allow: panic-path `byte` was just located in this node under the asserted single-child invariant; a failed remove is a tree-code bug, covered by this method's documented panic contract
        (byte, child)
    }
}

impl<V> Node<V> {
    pub fn leaf(key: &[u8], value: V) -> Box<Self> {
        Box::new(Node::Leaf(Leaf {
            key: key.into(),
            value,
        }))
    }

    /// The smallest (leftmost) leaf of the subtree. `None` only when an
    /// inner node has no children — a broken invariant (inner nodes always
    /// hold at least two children), reported as absent rather than a panic.
    pub fn minimum(&self) -> Option<&Leaf<V>> {
        match self {
            Node::Leaf(l) => Some(l),
            Node::Inner(inner) => {
                let mut first = None;
                inner.children.for_each(|_, c| {
                    if first.is_none() {
                        first = Some(c);
                    }
                });
                first?.minimum()
            }
        }
    }

    /// The largest (rightmost) leaf of the subtree. `None` only when an
    /// inner node has no children — a broken invariant (inner nodes always
    /// hold at least two children), reported as absent rather than a panic.
    pub fn maximum(&self) -> Option<&Leaf<V>> {
        match self {
            Node::Leaf(l) => Some(l),
            Node::Inner(inner) => {
                let mut last = None;
                inner.children.for_each(|_, c| last = Some(c));
                last?.maximum()
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn leaf(b: u8) -> Box<Node<u64>> {
        Node::leaf(&[b], b as u64)
    }

    fn assert_sorted(c: &Children<u64>) {
        let e = c.entries();
        for w in e.windows(2) {
            assert!(
                w[0].0 < w[1].0,
                "children not sorted: {} !< {}",
                w[0].0,
                w[1].0
            );
        }
    }

    #[test]
    fn node4_insert_sorted_and_get() {
        let mut c = Children::new4();
        for b in [9u8, 3, 200, 77] {
            c.insert(b, leaf(b));
        }
        assert_eq!(c.len(), 4);
        assert!(c.is_full());
        assert_sorted(&c);
        for b in [9u8, 3, 200, 77] {
            assert!(matches!(c.get(b), Some(Node::Leaf(l)) if l.value == b as u64));
        }
        assert!(c.get(4).is_none());
    }

    #[test]
    fn grow_chain_preserves_children() {
        let mut c = Children::new4();
        let mut inserted = Vec::new();
        // Fill through every growth step up to a full Node256.
        for b in 0..=255u8 {
            if c.is_full() {
                let before = c.entries().iter().map(|(b, _)| *b).collect::<Vec<_>>();
                c.grow();
                let after = c.entries().iter().map(|(b, _)| *b).collect::<Vec<_>>();
                assert_eq!(before, after, "grow changed the child set");
            }
            c.insert(b, leaf(b));
            inserted.push(b);
            assert_sorted(&c);
        }
        assert_eq!(c.node_type(), NodeType::N256);
        assert_eq!(c.len(), 256);
        for b in inserted {
            assert!(c.get(b).is_some());
        }
    }

    #[test]
    fn remove_and_shrink_chain() {
        let mut c = Children::new4();
        for b in 0..=255u8 {
            if c.is_full() {
                c.grow();
            }
            c.insert(b, leaf(b));
        }
        // Remove from the top down; shrink whenever the threshold allows.
        for b in (0..=255u8).rev().take(255) {
            assert!(c.remove(b).is_some());
            let before = c.entries().iter().map(|(b, _)| *b).collect::<Vec<_>>();
            c.shrink();
            let after = c.entries().iter().map(|(b, _)| *b).collect::<Vec<_>>();
            assert_eq!(before, after, "shrink changed the child set");
            assert_sorted(&c);
        }
        assert_eq!(c.len(), 1);
        assert_eq!(c.node_type(), NodeType::N4);
        assert!(c.get(0).is_some());
    }

    #[test]
    fn remove_missing_returns_none() {
        let mut c = Children::new4();
        c.insert(10, leaf(10));
        assert!(c.remove(11).is_none());
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn node48_slot_reuse_after_remove() {
        let mut c = Children::new4();
        for b in 0..48u8 {
            if c.is_full() {
                c.grow();
            }
            c.insert(b, leaf(b));
        }
        assert_eq!(c.node_type(), NodeType::N48);
        assert!(c.is_full());
        assert!(c.remove(13).is_some());
        // The freed slot must be reusable for a different byte.
        c.insert(200, leaf(200));
        assert!(c.is_full());
        assert!(c.get(200).is_some());
        assert!(c.get(13).is_none());
    }

    #[test]
    fn take_only_child() {
        let mut c = Children::new4();
        c.insert(42, leaf(42));
        let (byte, child) = c.take_only_child();
        assert_eq!(byte, 42);
        assert!(matches!(*child, Node::Leaf(ref l) if l.value == 42));
        assert_eq!(c.len(), 0);
    }

    #[test]
    fn min_max_leaf() {
        let mut c = Children::new4();
        for b in [7u8, 1, 200] {
            c.insert(b, leaf(b));
        }
        let node = Node::Inner(Inner {
            prefix: Box::from(&b""[..]),
            children: c,
        });
        assert_eq!(node.minimum().unwrap().value, 1);
        assert_eq!(node.maximum().unwrap().value, 200);
    }

    #[test]
    fn capacities_and_thresholds() {
        assert_eq!(NodeType::N4.capacity(), 4);
        assert_eq!(NodeType::N256.capacity(), 256);
        for ty in NodeType::ALL {
            assert!(ty.min_children() <= ty.capacity());
        }
    }
}
