//! Property-based tests: the ART must behave exactly like a sorted map
//! (`BTreeMap`) under arbitrary prefix-free workloads.

use cuart_art::{Art, ArtError};
use proptest::prelude::*;
use std::collections::BTreeMap;

/// Fixed-length keys are trivially prefix-free.
fn fixed_keys(len: usize, n: usize) -> impl Strategy<Value = Vec<Vec<u8>>> {
    prop::collection::vec(prop::collection::vec(any::<u8>(), len), 1..n)
}

/// Variable-length keys made prefix-free by appending a sentinel 0xFF byte
/// to keys drawn from a 0..=0xFE alphabet.
fn prefix_free_keys(n: usize) -> impl Strategy<Value = Vec<Vec<u8>>> {
    prop::collection::vec(prop::collection::vec(0u8..=0xFE, 0..20), 1..n).prop_map(|keys| {
        keys.into_iter()
            .map(|mut k| {
                k.push(0xFF);
                k
            })
            .collect()
    })
}

proptest! {
    #[test]
    fn lookup_matches_btreemap(keys in fixed_keys(8, 300)) {
        let mut art = Art::new();
        let mut model = BTreeMap::new();
        for (i, k) in keys.iter().enumerate() {
            art.insert(k, i as u64).unwrap();
            model.insert(k.clone(), i as u64);
        }
        prop_assert_eq!(art.len(), model.len());
        for (k, v) in &model {
            prop_assert_eq!(art.get(k), Some(v));
        }
        // A key not in the model must miss.
        let absent = vec![0u8; 9];
        prop_assert_eq!(art.get(&absent), None);
    }

    #[test]
    fn iteration_is_sorted_and_complete(keys in prefix_free_keys(200)) {
        let mut art = Art::new();
        let mut model = BTreeMap::new();
        for (i, k) in keys.iter().enumerate() {
            art.insert(k, i as u64).unwrap();
            model.insert(k.clone(), i as u64);
        }
        let got: Vec<_> = art.iter().map(|(k, &v)| (k, v)).collect();
        let want: Vec<_> = model.iter().map(|(k, &v)| (k.clone(), v)).collect();
        prop_assert_eq!(got, want);
    }

    #[test]
    fn removal_matches_btreemap(
        keys in fixed_keys(6, 200),
        remove_mask in prop::collection::vec(any::<bool>(), 200),
    ) {
        let mut art = Art::new();
        let mut model = BTreeMap::new();
        for (i, k) in keys.iter().enumerate() {
            art.insert(k, i as u64).unwrap();
            model.insert(k.clone(), i as u64);
        }
        for (k, &rm) in keys.iter().zip(&remove_mask) {
            if rm {
                prop_assert_eq!(art.remove(k), model.remove(k));
            }
        }
        prop_assert_eq!(art.len(), model.len());
        for k in &keys {
            prop_assert_eq!(art.get(k), model.get(k));
        }
        let got: Vec<_> = art.iter().map(|(k, _)| k).collect();
        let want: Vec<_> = model.keys().cloned().collect();
        prop_assert_eq!(got, want);
    }

    #[test]
    fn range_matches_btreemap(
        keys in fixed_keys(4, 200),
        lo in prop::collection::vec(any::<u8>(), 4),
        hi in prop::collection::vec(any::<u8>(), 4),
    ) {
        let (lo, hi) = if lo <= hi { (lo, hi) } else { (hi, lo) };
        let mut art = Art::new();
        let mut model = BTreeMap::new();
        for (i, k) in keys.iter().enumerate() {
            art.insert(k, i as u64).unwrap();
            model.insert(k.clone(), i as u64);
        }
        let got: Vec<_> = art.range(&lo, &hi).map(|(k, &v)| (k, v)).collect();
        let want: Vec<_> = model
            .range(lo.clone()..=hi.clone())
            .map(|(k, &v)| (k.clone(), v))
            .collect();
        prop_assert_eq!(got, want);
    }

    #[test]
    fn prefix_violations_never_corrupt(
        keys in prop::collection::vec(prop::collection::vec(any::<u8>(), 1..6), 1..100)
    ) {
        // Arbitrary keys MAY violate prefix-freeness; the tree must either
        // accept or reject each insert, and accepted keys must stay intact.
        let mut art = Art::new();
        let mut accepted: BTreeMap<Vec<u8>, u64> = BTreeMap::new();
        for (i, k) in keys.iter().enumerate() {
            match art.insert(k, i as u64) {
                Ok(_) => {
                    accepted.insert(k.clone(), i as u64);
                }
                Err(ArtError::PrefixViolation) => {}
                Err(e) => prop_assert!(false, "unexpected error {e:?}"),
            }
        }
        prop_assert_eq!(art.len(), accepted.len());
        for (k, v) in &accepted {
            prop_assert_eq!(art.get(k), Some(v), "key {:?} lost", k);
        }
    }

    #[test]
    fn stats_leaf_count_matches_len(keys in fixed_keys(8, 150)) {
        let mut art = Art::new();
        for (i, k) in keys.iter().enumerate() {
            art.insert(k, i as u64).unwrap();
        }
        let stats = art.stats();
        prop_assert_eq!(stats.leaves, art.len());
        prop_assert!(stats.max_depth as f64 >= stats.avg_depth());
        // Every inner node holds at least 2 children after pure inserts, so
        // there can never be more inner nodes than leaves - 1.
        prop_assert!(stats.inner_nodes() <= art.len().saturating_sub(1));
    }

    #[test]
    fn min_max_agree_with_iteration(keys in fixed_keys(8, 100)) {
        let mut art = Art::new();
        for (i, k) in keys.iter().enumerate() {
            art.insert(k, i as u64).unwrap();
        }
        let all: Vec<_> = art.iter().map(|(k, _)| k).collect();
        prop_assert_eq!(art.min().map(|(k, _)| k), all.first().cloned());
        prop_assert_eq!(art.max().map(|(k, _)| k), all.last().cloned());
    }
}
