//! End-to-end analyzer behaviour: deterministic JSON output against a
//! committed golden document, baseline round-trip semantics, the fixture
//! corpus, and the committed tree baseline staying green.

use cuart_analyze::source::{classify, SourceFile};
use cuart_analyze::{analyze_files, analyze_tree, baseline, check_fixtures, findings};
use std::path::Path;

fn workspace_root() -> std::path::PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root resolves")
}

/// A small fixed file set exercising several rules at once.
fn golden_files() -> Vec<SourceFile> {
    let path = "crates/core/src/golden.rs".to_string();
    let text = "\
fn f(x: Option<u32>) -> u32 {
    x.unwrap()
}

fn emit(t: &Telemetry) {
    t.incr(\"cuart.golden.stray\", 1);
    let span = SpanNode::leaf(\"golden.mystery\", 1);
    t.record_span_tree(&span);
}
"
    .to_string();
    vec![SourceFile::from_text(path.clone(), text, classify(&path))]
}

#[test]
fn golden_json_output() {
    let analysis = analyze_files(&golden_files(), Path::new("."), false);
    let json = findings::to_json(&analysis.findings);
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(
            Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden.json"),
            &json,
        )
        .expect("golden file written");
        return;
    }
    let golden = include_str!("golden.json");
    assert_eq!(
        json, golden,
        "analyzer JSON drifted from crates/analyze/tests/golden.json; \
         if the change is deliberate, update the golden file"
    );
}

#[test]
fn baseline_round_trip() {
    let analysis = analyze_files(&golden_files(), Path::new("."), false);
    assert!(!analysis.findings.is_empty(), "golden set must find things");

    // Render → parse → diff against itself: nothing new, nothing fixed.
    let doc = baseline::render(&analysis.findings);
    let parsed = baseline::Baseline::parse(&doc).expect("rendered baseline parses");
    let diff = parsed.diff(&analysis.findings);
    assert!(diff.new.is_empty(), "round-trip produced new findings");
    assert!(diff.fixed.is_empty(), "round-trip produced fixed findings");

    // Dropping one finding from the run reports it as fixed.
    let fewer = &analysis.findings[1..];
    let diff = parsed.diff(fewer);
    assert!(diff.new.is_empty());
    assert_eq!(diff.fixed.len(), 1);
    assert_eq!(diff.fixed[0], analysis.findings[0].key);

    // A finding absent from the baseline reports as new.
    let shorter = baseline::Baseline::parse(&baseline::render(fewer)).expect("parses");
    let diff = shorter.diff(&analysis.findings);
    assert_eq!(diff.new.len(), 1);
    assert_eq!(diff.new[0].key, analysis.findings[0].key);
    assert!(diff.fixed.is_empty());
}

#[test]
fn fixture_corpus_passes() {
    let errors = check_fixtures(&workspace_root()).expect("fixture corpus readable");
    assert!(errors.is_empty(), "fixture corpus mismatches: {errors:#?}");
}

#[test]
fn committed_baseline_covers_the_tree() {
    let root = workspace_root();
    let analysis = analyze_tree(&root).expect("tree scan succeeds");
    let bl = baseline::Baseline::load(&root.join("results/analyze-baseline.json"))
        .expect("committed baseline loads");
    let diff = bl.diff(&analysis.findings);
    assert!(
        diff.new.is_empty(),
        "findings not in the committed baseline (fix, allow, or re-baseline):\n{}",
        diff.new
            .iter()
            .map(|f| f.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
}
