// analyze-fixture-path: crates/core/src/kernels.rs
// Proves `index-hot-path` fires on bare indexing in a kernel file.
// The unwrap also proves panic-path applies to hot-path files.
// expect-finding: index-hot-path
// expect-finding: index-hot-path
// expect-finding: panic-path

fn walk(records: &[u8], offsets: &[usize], i: usize) -> u8 {
    let off = offsets[i];
    let byte = records[off];
    let _ = offsets.first().unwrap();
    byte
}
