// analyze-fixture-path: crates/telemetry/src/fixture_metrics.rs
// Proves `metric-name` fires on a stray `cuart.*` literal outside the
// generated registry, and `span-name` on a literal span constructor.
// expect-finding: metric-name
// expect-finding: span-name

fn emit(t: &Telemetry) {
    t.incr("cuart.fixture.stray_counter", 1);
    t.incr(names::LOOKUP_BATCHES, 1); // through the registry: passes
    let span = SpanNode::leaf("fixture.mystery", 10);
    let ok = SpanNode::leaf(names::spans::H2D, 10); // passes
    t.record_span_tree(&span);
    t.record_span_tree(&ok);
}
