// analyze-fixture-path: crates/core/src/fixture_allows.rs
// Proves `bad-allow` fires on malformed or unknown-rule suppressions.
// The file-level allow below names `bad-allow` itself and is well-formed,
// but bad-allow findings cannot be allowed away — both still fire.
// expect-finding: bad-allow
// expect-finding: bad-allow

// cuart-allow-file: bad-allow trying to silence the auditor

// cuart-allow: panic-path
fn missing_reason() {}

// cuart-allow: not-a-real-rule because reasons
fn unknown_rule() {}
