// analyze-fixture-path: crates/core/src/fixture_panic.rs
// Proves `panic-path` fires on each panicking construct in lib code,
// and that test regions and suppressions are honoured.
// expect-finding: panic-path
// expect-finding: panic-path
// expect-finding: panic-path
// expect-finding: panic-path

fn takes_the_panicky_roads(x: Option<u32>, m: &std::sync::Mutex<u32>) -> u32 {
    let a = x.unwrap();
    let b = m.lock().expect("poisoned");
    if a > 3 {
        panic!("a too big");
    }
    match a {
        0..=3 => a + *b,
        _ => unreachable!(),
    }
}

fn suppressed_site(x: Option<u32>) -> u32 {
    // cuart-allow: panic-path fixture shows a documented suppression
    x.unwrap()
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwrap_in_tests_is_fine() {
        let v: Option<u32> = Some(1);
        assert_eq!(v.unwrap(), 1);
    }
}
