// analyze-fixture-path: crates/telemetry/src/fixture_gated.rs
// Proves `feature-gate` fires on a gated public item with no
// `#[cfg(not(...))]` twin, and stays quiet when the twin exists.
// expect-finding: feature-gate

#[cfg(feature = "enabled")]
pub fn orphaned_gated_api() {}

#[cfg(feature = "enabled")]
pub fn twinned_api() {}

#[cfg(not(feature = "enabled"))]
pub fn twinned_api() {}

#[cfg(feature = "enabled")]
fn private_gated_helper() {}
