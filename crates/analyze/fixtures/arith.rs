// analyze-fixture-path: crates/gpu-sim/src/exec.rs
// Proves `arith-overflow` fires on bare compound assignment to
// quantity-named accounting fields in kernel/scheduler scope, and that
// stated-intent forms pass.
// expect-finding: arith-overflow
// expect-finding: arith-overflow

struct Report {
    dram_bytes: u64,
    sector_count: u64,
    label: String,
}

fn account(r: &mut Report, bytes: u64, sectors: u64) {
    r.dram_bytes += bytes;
    r.sector_count -= sectors;
    // Stated intent passes:
    r.dram_bytes = r.dram_bytes.saturating_add(bytes);
    // Non-quantity names pass:
    r.label += "suffix";
}
