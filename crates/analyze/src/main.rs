//! The `cuart-analyze` binary: run the lints, manage the baseline, and
//! regenerate the registry artifacts.
//!
//! ```text
//! cuart-analyze                                  # lint, fail on any finding
//! cuart-analyze --baseline results/analyze-baseline.json --deny-new
//! cuart-analyze --update-baseline results/analyze-baseline.json
//! cuart-analyze --json                           # findings as JSON on stdout
//! cuart-analyze --emit-registry                  # rewrite telemetry names.rs
//! cuart-analyze --emit-design-table              # rewrite the DESIGN.md table
//! cuart-analyze --fixtures                       # prove every rule still fires
//! cuart-analyze --list-rules
//! ```

use cuart_analyze::lints::metrics::{TABLE_BEGIN, TABLE_END};
use cuart_analyze::{analyze_tree, baseline, check_fixtures, findings, lints, registry};
use std::path::PathBuf;
use std::process::ExitCode;

struct Options {
    root: PathBuf,
    json: bool,
    baseline: Option<PathBuf>,
    deny_new: bool,
    update_baseline: Option<PathBuf>,
    emit_registry: bool,
    emit_design_table: bool,
    fixtures: bool,
    list_rules: bool,
}

fn parse_args() -> Result<Options, String> {
    let mut opts = Options {
        root: PathBuf::from("."),
        json: false,
        baseline: None,
        deny_new: false,
        update_baseline: None,
        emit_registry: false,
        emit_design_table: false,
        fixtures: false,
        list_rules: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => {
                opts.root = PathBuf::from(args.next().ok_or("--root needs a path")?);
            }
            "--json" => opts.json = true,
            "--baseline" => {
                opts.baseline = Some(PathBuf::from(args.next().ok_or("--baseline needs a path")?));
            }
            "--deny-new" => opts.deny_new = true,
            "--update-baseline" => {
                opts.update_baseline = Some(PathBuf::from(
                    args.next().ok_or("--update-baseline needs a path")?,
                ));
            }
            "--emit-registry" => opts.emit_registry = true,
            "--emit-design-table" => opts.emit_design_table = true,
            "--fixtures" => opts.fixtures = true,
            "--list-rules" => opts.list_rules = true,
            "--help" | "-h" => {
                return Err("see module docs: cuart-analyze [--root P] [--json] \
                            [--baseline P [--deny-new]] [--update-baseline P] \
                            [--emit-registry] [--emit-design-table] [--fixtures] [--list-rules]"
                    .to_string());
            }
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    Ok(opts)
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(e) => {
            eprintln!("cuart-analyze: {e}");
            return ExitCode::from(2);
        }
    };

    if opts.list_rules {
        for rule in lints::all_rules() {
            println!("{:<16} {}", rule.id(), rule.describe());
        }
        return ExitCode::SUCCESS;
    }

    if opts.emit_registry {
        let path = opts.root.join("crates/telemetry/src/names.rs");
        if let Err(e) = std::fs::write(&path, registry::generate_names_rs()) {
            eprintln!("cuart-analyze: writing {}: {e}", path.display());
            return ExitCode::from(2);
        }
        println!("wrote {}", path.display());
        return ExitCode::SUCCESS;
    }

    if opts.emit_design_table {
        let path = opts.root.join("DESIGN.md");
        let text = match std::fs::read_to_string(&path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("cuart-analyze: reading {}: {e}", path.display());
                return ExitCode::from(2);
            }
        };
        let (Some(b), Some(e)) = (text.find(TABLE_BEGIN), text.find(TABLE_END)) else {
            eprintln!(
                "cuart-analyze: {} lacks the {TABLE_BEGIN} … {TABLE_END} markers",
                path.display()
            );
            return ExitCode::from(2);
        };
        let new = format!(
            "{}{}\n{}\n{}",
            &text[..b],
            TABLE_BEGIN,
            registry::generate_metric_table(),
            &text[e..]
        );
        if let Err(err) = std::fs::write(&path, new) {
            eprintln!("cuart-analyze: writing {}: {err}", path.display());
            return ExitCode::from(2);
        }
        println!("rewrote metric table in {}", path.display());
        return ExitCode::SUCCESS;
    }

    if opts.fixtures {
        match check_fixtures(&opts.root) {
            Ok(errors) if errors.is_empty() => {
                println!("fixture corpus: every rule fires as expected");
                return ExitCode::SUCCESS;
            }
            Ok(errors) => {
                for e in &errors {
                    eprintln!("fixture mismatch: {e}");
                }
                return ExitCode::FAILURE;
            }
            Err(e) => {
                eprintln!("cuart-analyze: fixtures: {e}");
                return ExitCode::from(2);
            }
        }
    }

    let analysis = match analyze_tree(&opts.root) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("cuart-analyze: {e}");
            return ExitCode::from(2);
        }
    };

    if let Some(path) = &opts.update_baseline {
        if let Err(e) = std::fs::write(path, baseline::render(&analysis.findings)) {
            eprintln!("cuart-analyze: writing {}: {e}", path.display());
            return ExitCode::from(2);
        }
        println!(
            "baseline updated: {} finding(s) accepted into {}",
            analysis.findings.len(),
            path.display()
        );
        return ExitCode::SUCCESS;
    }

    if opts.json {
        print!("{}", findings::to_json(&analysis.findings));
    }

    match &opts.baseline {
        Some(path) => {
            let base = match baseline::Baseline::load(path) {
                Ok(b) => b,
                Err(e) => {
                    eprintln!("cuart-analyze: {e}");
                    return ExitCode::from(2);
                }
            };
            let diff = base.diff(&analysis.findings);
            if !opts.json {
                for f in &diff.new {
                    println!("NEW {f}");
                }
                for k in &diff.fixed {
                    println!("FIXED (remove from baseline): {k}");
                }
                println!(
                    "{} file(s), {} finding(s): {} baselined, {} new, {} fixed, {} suppressed",
                    analysis.files_scanned,
                    analysis.findings.len(),
                    analysis.findings.len() - diff.new.len(),
                    diff.new.len(),
                    diff.fixed.len(),
                    analysis.suppressed
                );
            }
            if opts.deny_new && !diff.new.is_empty() {
                eprintln!(
                    "cuart-analyze: {} new finding(s) not in {} — fix them, add a \
                     `// cuart-allow: <rule> <reason>`, or re-baseline deliberately",
                    diff.new.len(),
                    path.display()
                );
                return ExitCode::FAILURE;
            }
            ExitCode::SUCCESS
        }
        None => {
            if !opts.json {
                for f in &analysis.findings {
                    println!("{f}");
                }
                println!(
                    "{} file(s), {} finding(s), {} suppressed",
                    analysis.files_scanned,
                    analysis.findings.len(),
                    analysis.suppressed
                );
            }
            if analysis.findings.is_empty() {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
    }
}
