//! Findings: what a lint reports, how it is fingerprinted for the
//! baseline, and how it renders as text or JSON.

use std::fmt;

/// One lint finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Rule id (`panic-path`, `arith-overflow`, `metric-name`,
    /// `feature-gate`, `index-hot-path`, `bad-allow`, …).
    pub rule: &'static str,
    /// Workspace-relative path.
    pub path: String,
    /// 1-based line.
    pub line: u32,
    /// Human-readable description.
    pub message: String,
    /// Trimmed source line, for context and fingerprinting.
    pub snippet: String,
    /// Stable fingerprint: `rule:path:hash(snippet):occurrence`.
    ///
    /// Line numbers are deliberately excluded so unrelated edits above a
    /// finding do not invalidate the baseline; the occurrence index
    /// disambiguates identical snippets in one file.
    pub key: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}\n    {}",
            self.path, self.line, self.rule, self.message, self.snippet
        )
    }
}

/// FNV-1a, enough for snippet fingerprints.
fn fnv1a(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Assign fingerprint keys to a batch of findings (call once per run,
/// after all lints, so occurrence indices are deterministic).
pub fn assign_keys(findings: &mut [Finding]) {
    findings.sort_by(|a, b| {
        (&a.path, a.line, a.rule, &a.message).cmp(&(&b.path, b.line, b.rule, &b.message))
    });
    let mut seen: std::collections::HashMap<(String, String, u64), u32> =
        std::collections::HashMap::new();
    for f in findings.iter_mut() {
        let h = fnv1a(&normalize(&f.snippet));
        let n = seen
            .entry((f.rule.to_string(), f.path.clone(), h))
            .or_insert(0);
        f.key = format!("{}:{}:{:016x}:{}", f.rule, f.path, h, n);
        *n += 1;
    }
}

/// Whitespace-insensitive snippet normalization, so re-indenting a line
/// does not produce a "new" finding.
fn normalize(s: &str) -> String {
    s.split_whitespace().collect::<Vec<_>>().join(" ")
}

/// Escape a string for JSON output.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Render findings as a deterministic JSON document.
pub fn to_json(findings: &[Finding]) -> String {
    let mut out = String::from("{\n  \"version\": 1,\n  \"findings\": [\n");
    for (i, f) in findings.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"key\": \"{}\", \"rule\": \"{}\", \"path\": \"{}\", \"line\": {}, \"message\": \"{}\", \"snippet\": \"{}\"}}{}\n",
            json_escape(&f.key),
            f.rule,
            json_escape(&f.path),
            f.line,
            json_escape(&f.message),
            json_escape(&f.snippet),
            if i + 1 < findings.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn f(rule: &'static str, path: &str, line: u32, snippet: &str) -> Finding {
        Finding {
            rule,
            path: path.into(),
            line,
            message: "m".into(),
            snippet: snippet.into(),
            key: String::new(),
        }
    }

    #[test]
    fn keys_are_stable_under_line_drift_and_reindent() {
        let mut a = vec![f("panic-path", "x.rs", 10, "a.unwrap();")];
        let mut b = vec![f("panic-path", "x.rs", 99, "    a.unwrap();")];
        assign_keys(&mut a);
        assign_keys(&mut b);
        assert_eq!(a[0].key, b[0].key);
    }

    #[test]
    fn duplicate_snippets_get_distinct_keys() {
        let mut v = vec![
            f("panic-path", "x.rs", 1, "a.unwrap();"),
            f("panic-path", "x.rs", 5, "a.unwrap();"),
        ];
        assign_keys(&mut v);
        assert_ne!(v[0].key, v[1].key);
        assert!(v[0].key.ends_with(":0"));
        assert!(v[1].key.ends_with(":1"));
    }

    #[test]
    fn json_round_trips_through_the_telemetry_parser() {
        let mut v = vec![f("metric-name", "y.rs", 3, "\"cuart.x\"")];
        assign_keys(&mut v);
        let doc = cuart_telemetry::json::parse(&to_json(&v)).unwrap();
        let arr = doc.get("findings").unwrap().as_array().unwrap();
        assert_eq!(arr.len(), 1);
        assert_eq!(
            arr[0].get("rule").and_then(|r| r.as_str()),
            Some("metric-name")
        );
    }
}
