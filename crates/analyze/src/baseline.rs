//! The findings baseline: accepted pre-existing findings, committed at
//! `results/analyze-baseline.json`.
//!
//! CI runs with `--deny-new`: findings whose fingerprint key is in the
//! baseline pass; any *new* finding fails the build. Fixed findings are
//! reported so the baseline can be re-tightened with `--update-baseline`.

use crate::findings::{json_escape, Finding};
use cuart_telemetry::json;
use std::collections::BTreeSet;

/// Parsed baseline: the set of accepted finding keys.
#[derive(Debug, Default, Clone)]
pub struct Baseline {
    pub keys: BTreeSet<String>,
}

/// Result of comparing a run against a baseline.
pub struct Diff<'a> {
    /// Findings not covered by the baseline (fail CI under `--deny-new`).
    pub new: Vec<&'a Finding>,
    /// Baseline keys no finding matched (candidates for removal).
    pub fixed: Vec<String>,
}

impl Baseline {
    pub fn parse(text: &str) -> Result<Baseline, String> {
        let doc = json::parse(text).map_err(|e| format!("baseline: {e}"))?;
        let arr = doc
            .get("findings")
            .and_then(|f| f.as_array())
            .ok_or("baseline: missing \"findings\" array")?;
        let mut keys = BTreeSet::new();
        for item in arr {
            let key = item
                .get("key")
                .and_then(|k| k.as_str())
                .ok_or("baseline: finding without \"key\"")?;
            keys.insert(key.to_string());
        }
        Ok(Baseline { keys })
    }

    pub fn load(path: &std::path::Path) -> Result<Baseline, String> {
        let text = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
        Baseline::parse(&text)
    }

    pub fn diff<'a>(&self, findings: &'a [Finding]) -> Diff<'a> {
        let new = findings
            .iter()
            .filter(|f| !self.keys.contains(&f.key))
            .collect();
        let present: BTreeSet<&str> = findings.iter().map(|f| f.key.as_str()).collect();
        let fixed = self
            .keys
            .iter()
            .filter(|k| !present.contains(k.as_str()))
            .cloned()
            .collect();
        Diff { new, fixed }
    }
}

/// Serialize findings as a baseline document (sorted by key, with the
/// human-readable context kept so reviews of baseline churn are legible).
pub fn render(findings: &[Finding]) -> String {
    let mut sorted: Vec<&Finding> = findings.iter().collect();
    sorted.sort_by(|a, b| a.key.cmp(&b.key));
    let mut out = String::from("{\n  \"version\": 1,\n  \"findings\": [\n");
    for (i, f) in sorted.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"key\": \"{}\", \"rule\": \"{}\", \"path\": \"{}\", \"snippet\": \"{}\"}}{}\n",
            json_escape(&f.key),
            f.rule,
            json_escape(&f.path),
            json_escape(&f.snippet),
            if i + 1 < sorted.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::findings::assign_keys;

    fn finding(snippet: &str) -> Finding {
        Finding {
            rule: "panic-path",
            path: "crates/core/src/x.rs".into(),
            line: 1,
            message: "m".into(),
            snippet: snippet.into(),
            key: String::new(),
        }
    }

    #[test]
    fn round_trip_suppresses_known_and_flags_new() {
        let mut old = vec![finding("a.unwrap();")];
        assign_keys(&mut old);
        let baseline = Baseline::parse(&render(&old)).unwrap();

        // Same tree → no new findings, nothing fixed.
        let d = baseline.diff(&old);
        assert!(d.new.is_empty() && d.fixed.is_empty());

        // A new violation appears → exactly it is reported new.
        let mut grown = vec![finding("a.unwrap();"), finding("b.expect(\"x\");")];
        assign_keys(&mut grown);
        let d = baseline.diff(&grown);
        assert_eq!(d.new.len(), 1);
        assert!(d.new[0].snippet.contains("expect"));

        // The old violation is fixed → its key surfaces as removable.
        let mut shrunk: Vec<Finding> = Vec::new();
        assign_keys(&mut shrunk);
        let d = baseline.diff(&shrunk);
        assert_eq!(d.fixed.len(), 1);
    }

    #[test]
    fn rejects_malformed_documents() {
        assert!(Baseline::parse("{}").is_err());
        assert!(Baseline::parse("{\"findings\": [{}]}").is_err());
        assert!(Baseline::parse("not json").is_err());
    }
}
