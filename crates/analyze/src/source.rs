//! Per-file analysis context: token stream, test-region map, and
//! `cuart-allow` suppression comments.

use crate::lexer::{lex, Token, TokenKind};
use std::path::{Path, PathBuf};

/// Which lint tier a file belongs to (decided from its workspace path).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Tier {
    /// Library crates (core, host, gpu-sim, grt, art, telemetry): the
    /// full panic-path rule applies — no `unwrap`/`expect`/`panic!` in
    /// non-test code.
    Lib,
    /// Tool/bench/CLI crates: `expect` is allowed but must carry a
    /// non-empty message; bare `unwrap` is still flagged.
    Tool,
    /// Not linted (shims, examples, fixtures, generated files).
    Skip,
}

/// A parsed source file ready for linting.
pub struct SourceFile {
    /// Path relative to the workspace root, with `/` separators.
    pub rel_path: String,
    pub text: String,
    pub tokens: Vec<Token>,
    pub tier: Tier,
    /// Sorted, disjoint byte ranges covered by `#[cfg(test)]` /
    /// `#[test]` items.
    test_regions: Vec<(usize, usize)>,
    /// Line-scoped suppressions: (line the allow covers, rule id).
    allows: Vec<(u32, String)>,
    /// File-scoped suppressions: (line of the comment, rule id allowed
    /// everywhere in the file).
    file_allows: Vec<(u32, String)>,
    /// `cuart-allow` comments missing a rule or reason (lint fodder).
    pub malformed_allows: Vec<u32>,
}

impl SourceFile {
    pub fn parse(root: &Path, path: &Path, tier: Tier) -> std::io::Result<SourceFile> {
        let text = std::fs::read_to_string(path)?;
        let rel = path
            .strip_prefix(root)
            .unwrap_or(path)
            .to_string_lossy()
            .replace('\\', "/");
        Ok(SourceFile::from_text(rel, text, tier))
    }

    pub fn from_text(rel_path: String, text: String, tier: Tier) -> SourceFile {
        let tokens = lex(&text);
        let test_regions = find_test_regions(&tokens);
        let found = find_allows(&tokens);
        SourceFile {
            rel_path,
            text,
            tokens,
            tier,
            test_regions,
            allows: found.line,
            file_allows: found.file,
            malformed_allows: found.malformed,
        }
    }

    /// Is byte offset `pos` inside a `#[cfg(test)]` / `#[test]` region?
    pub fn in_test_code(&self, pos: usize) -> bool {
        self.test_regions.iter().any(|&(s, e)| pos >= s && pos < e)
    }

    /// Is `rule` suppressed for a finding on `line`?
    ///
    /// A trailing `// cuart-allow: <rule> <reason>` comment covers its
    /// own line; a standalone one covers the next source line.
    /// `// cuart-allow-file: <rule> <reason>` covers the whole file.
    pub fn is_allowed(&self, rule: &str, line: u32) -> bool {
        self.file_allows.iter().any(|(_, r)| r == rule)
            || self.allows.iter().any(|(l, r)| r == rule && line == *l)
    }

    /// Every rule id named by an allow comment, with the comment's line
    /// (for the unknown-rule check).
    pub fn allow_rules(&self) -> impl Iterator<Item = (u32, &str)> {
        self.allows
            .iter()
            .map(|(l, r)| (*l, r.as_str()))
            .chain(self.file_allows.iter().map(|(l, r)| (*l, r.as_str())))
    }

    /// 1-based line content, trimmed, for messages and fingerprints.
    pub fn line_text(&self, line: u32) -> &str {
        self.text
            .lines()
            .nth(line.saturating_sub(1) as usize)
            .unwrap_or("")
            .trim()
    }

    /// Non-comment tokens (what most lints iterate over).
    pub fn code_tokens(&self) -> impl Iterator<Item = (usize, &Token)> {
        self.tokens
            .iter()
            .enumerate()
            .filter(|(_, t)| !t.is_comment())
    }
}

/// Classify a workspace-relative path into a lint tier.
pub fn classify(rel_path: &str) -> Tier {
    let p = rel_path;
    if p.starts_with("shims/")
        || p.starts_with("examples/")
        || p.starts_with("crates/analyze/fixtures/")
        || p.ends_with("crates/telemetry/src/names.rs")
        || p.contains("/tests/")
        || p.starts_with("tests/")
    {
        return Tier::Skip;
    }
    for lib in [
        "crates/core/",
        "crates/host/",
        "crates/gpu-sim/",
        "crates/grt/",
        "crates/art/",
        "crates/telemetry/",
    ] {
        if p.starts_with(lib) {
            return Tier::Lib;
        }
    }
    if p.starts_with("crates/") {
        return Tier::Tool;
    }
    Tier::Skip
}

/// Find byte ranges of test-only items: any item whose attribute list
/// contains `#[test]` or a `cfg(…)` mentioning `test`, extended to the
/// end of the following brace-block (or `;` for bodiless items).
fn find_test_regions(tokens: &[Token]) -> Vec<(usize, usize)> {
    let mut regions: Vec<(usize, usize)> = Vec::new();
    let code: Vec<&Token> = tokens.iter().filter(|t| !t.is_comment()).collect();
    let mut i = 0usize;
    while i < code.len() {
        if code[i].is_punct("#") && i + 1 < code.len() && code[i + 1].is_punct("[") {
            let attr_start = code[i].start;
            // Find the matching `]` and check whether the attribute
            // mentions the `test` ident (covers `#[test]`, `#[cfg(test)]`,
            // `#[cfg(all(test, …))]`, `#[cfg_attr(test, …)]`).
            let mut depth = 0i32;
            let mut j = i + 1;
            let mut mentions_test = false;
            while j < code.len() {
                if code[j].is_punct("[") {
                    depth += 1;
                } else if code[j].is_punct("]") {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                } else if code[j].ident() == Some("test") {
                    mentions_test = true;
                }
                j += 1;
            }
            if !mentions_test {
                i = j + 1;
                continue;
            }
            // Skip any further attributes, then scan the item: the region
            // ends at the close of the first top-level brace block, or at
            // a `;` seen before any `{` (e.g. `#[cfg(test)] use …;`).
            let mut k = j + 1;
            while k + 1 < code.len() && code[k].is_punct("#") && code[k + 1].is_punct("[") {
                let mut d = 0i32;
                k += 1;
                while k < code.len() {
                    if code[k].is_punct("[") {
                        d += 1;
                    } else if code[k].is_punct("]") {
                        d -= 1;
                        if d == 0 {
                            break;
                        }
                    }
                    k += 1;
                }
                k += 1;
            }
            let mut brace = 0i32;
            let mut end = None;
            while k < code.len() {
                if code[k].is_punct("{") {
                    brace += 1;
                } else if code[k].is_punct("}") {
                    brace -= 1;
                    if brace == 0 {
                        end = Some(code[k].end);
                        break;
                    }
                } else if brace == 0 && code[k].is_punct(";") {
                    end = Some(code[k].end);
                    break;
                }
                k += 1;
            }
            let end = end.unwrap_or_else(|| code.last().map_or(attr_start, |t| t.end));
            regions.push((attr_start, end));
            i = k + 1;
            continue;
        }
        i += 1;
    }
    regions.sort_unstable();
    regions
}

/// Collected `cuart-allow` comments: per-line allows, file-level allows,
/// and malformed allow lines.
struct Allows {
    line: Vec<(u32, String)>,
    file: Vec<(u32, String)>,
    malformed: Vec<u32>,
}

fn find_allows(tokens: &[Token]) -> Allows {
    let mut line_allows = Vec::new();
    let mut file_allows = Vec::new();
    let mut malformed = Vec::new();
    for t in tokens {
        let body = match &t.kind {
            TokenKind::LineComment(c) => c.as_str(),
            _ => continue,
        };
        let body = body.trim_start_matches('/').trim();
        let (is_file, rest) = if let Some(r) = body.strip_prefix("cuart-allow-file:") {
            (true, r)
        } else if let Some(r) = body.strip_prefix("cuart-allow:") {
            (false, r)
        } else {
            if body.starts_with("cuart-allow") {
                // `cuart-allow` without the colon form — malformed.
                malformed.push(t.line);
            }
            continue;
        };
        let mut parts = rest.trim().splitn(2, char::is_whitespace);
        let rule = parts.next().unwrap_or("").trim().to_string();
        let reason = parts.next().unwrap_or("").trim();
        // A suppression must name a rule and justify itself.
        if rule.is_empty() || reason.len() < 3 {
            malformed.push(t.line);
            continue;
        }
        if is_file {
            file_allows.push((t.line, rule));
        } else {
            // Trailing comment (code before it on the line) covers its
            // own line; a standalone comment covers the next line.
            let trailing = tokens
                .iter()
                .any(|o| o.line == t.line && o.start < t.start && !o.is_comment());
            let covered = if trailing { t.line } else { t.line + 1 };
            line_allows.push((covered, rule));
        }
    }
    Allows {
        line: line_allows,
        file: file_allows,
        malformed,
    }
}

/// Discover the `.rs` files to analyze under `root`.
///
/// Scans `crates/*/src/**` plus `crates/bench/benches/**`; skip-tier
/// paths are filtered by [`classify`].
pub fn discover(root: &Path) -> Vec<PathBuf> {
    let mut out = Vec::new();
    let crates = root.join("crates");
    let mut stack = vec![crates];
    while let Some(dir) = stack.pop() {
        let Ok(entries) = std::fs::read_dir(&dir) else {
            continue;
        };
        for entry in entries.flatten() {
            let path = entry.path();
            if path.is_dir() {
                let name = path.file_name().and_then(|s| s.to_str()).unwrap_or("");
                // Only descend into source-bearing directories.
                let depth_ok = name == "src"
                    || name == "benches"
                    || dir.ends_with("crates")
                    || dir
                        .ancestors()
                        .any(|a| a.ends_with("src") || a.ends_with("benches"));
                if depth_ok && name != "fixtures" && name != "target" {
                    stack.push(path);
                }
            } else if path.extension().and_then(|e| e.to_str()) == Some("rs") {
                out.push(path);
            }
        }
    }
    out.sort();
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sf(text: &str) -> SourceFile {
        SourceFile::from_text("crates/core/src/x.rs".into(), text.into(), Tier::Lib)
    }

    #[test]
    fn cfg_test_mod_is_a_test_region() {
        let s = sf("fn a() { x.unwrap(); }\n#[cfg(test)]\nmod tests {\n fn b() { y.unwrap(); }\n}\nfn c() {}\n");
        let unwraps: Vec<_> = s
            .tokens
            .iter()
            .filter(|t| t.ident() == Some("unwrap"))
            .collect();
        assert_eq!(unwraps.len(), 2);
        assert!(!s.in_test_code(unwraps[0].start));
        assert!(s.in_test_code(unwraps[1].start));
        let c = s.tokens.iter().find(|t| t.ident() == Some("c")).unwrap();
        assert!(!s.in_test_code(c.start));
    }

    #[test]
    fn test_attr_fn_is_a_test_region() {
        let s = sf("#[test]\nfn t() { x.unwrap(); }\nfn u() { y.unwrap(); }\n");
        let unwraps: Vec<_> = s
            .tokens
            .iter()
            .filter(|t| t.ident() == Some("unwrap"))
            .collect();
        assert!(s.in_test_code(unwraps[0].start));
        assert!(!s.in_test_code(unwraps[1].start));
    }

    #[test]
    fn allows_cover_same_and_next_line() {
        let s = sf(
            "// cuart-allow: panic-path lock poisoning is unrecoverable\nlet g = m.lock().unwrap();\nlet h = n.lock().unwrap(); // cuart-allow: panic-path same here really\n",
        );
        assert!(s.is_allowed("panic-path", 2));
        assert!(s.is_allowed("panic-path", 3));
        assert!(!s.is_allowed("panic-path", 4));
        assert!(!s.is_allowed("arith-overflow", 2));
    }

    #[test]
    fn file_allow_and_malformed() {
        let s = sf("// cuart-allow-file: index-hot-path bounds checked by pack invariant\n// cuart-allow: panic-path\nfn f() {}\n");
        assert!(s.is_allowed("index-hot-path", 99));
        assert_eq!(s.malformed_allows, vec![2]);
    }

    #[test]
    fn classify_tiers() {
        assert_eq!(classify("crates/core/src/api.rs"), Tier::Lib);
        assert_eq!(classify("crates/bench/src/regress.rs"), Tier::Tool);
        assert_eq!(classify("crates/cli/src/lib.rs"), Tier::Tool);
        assert_eq!(classify("shims/rand/src/lib.rs"), Tier::Skip);
        assert_eq!(classify("crates/telemetry/src/names.rs"), Tier::Skip);
        assert_eq!(
            classify("crates/analyze/fixtures/panic_path.rs"),
            Tier::Skip
        );
        assert_eq!(classify("crates/gpu-sim/tests/proptest_sim.rs"), Tier::Skip);
    }
}
