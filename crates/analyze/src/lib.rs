//! `cuart-analyze`: in-tree static analysis for the CuART workspace.
//!
//! A lightweight Rust lexer ([`lexer`]) feeds a pluggable lint framework
//! ([`lints`]) with project-specific rules:
//!
//! * `panic-path` / `index-hot-path` — no panicking constructs in
//!   non-test library code (PR 2's `CuartError` discipline, enforced);
//! * `arith-overflow` — accounting arithmetic must state overflow
//!   intent (PR 8's wrapping sweep, enforced);
//! * `metric-name` / `span-name` / `metric-registry` — every series and
//!   span name flows through the generated registry
//!   (`crates/telemetry/src/names.rs`), which is cross-checked against
//!   the DESIGN.md metric table;
//! * `feature-gate` — `enabled`/`faults`-gated public items keep
//!   API-identical no-op twins;
//! * `bad-allow` — suppressions stay auditable.
//!
//! Findings fingerprint into a committed baseline
//! (`results/analyze-baseline.json`): accepted findings pass CI, any
//! *new* finding fails it (`--baseline … --deny-new`).

#![forbid(unsafe_code)]

pub mod baseline;
pub mod findings;
pub mod lexer;
pub mod lints;
pub mod registry;
pub mod source;

use findings::Finding;
use lints::{Lint, LintCtx};
use source::{classify, SourceFile};
use std::path::Path;

/// Outcome of one analysis run.
pub struct Analysis {
    /// Unsuppressed findings, sorted, with fingerprint keys assigned.
    pub findings: Vec<Finding>,
    /// Findings silenced by `cuart-allow` comments.
    pub suppressed: usize,
    /// Files scanned.
    pub files_scanned: usize,
}

/// Analyze the workspace rooted at `root` (per-file and tree checks).
pub fn analyze_tree(root: &Path) -> std::io::Result<Analysis> {
    let mut files = Vec::new();
    for path in source::discover(root) {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .to_string_lossy()
            .replace('\\', "/");
        files.push(SourceFile::parse(root, &path, classify(&rel))?);
    }
    Ok(analyze_files(&files, root, true))
}

/// Analyze an in-memory file set. `tree_checks` also runs the
/// cross-file rules (registry/docs consistency, feature twins).
pub fn analyze_files(files: &[SourceFile], root: &Path, tree_checks: bool) -> Analysis {
    let rules = lints::all_rules();
    let mut raw = Vec::new();
    for rule in &rules {
        for file in files {
            rule.check_file(file, &mut raw);
        }
    }
    if tree_checks {
        let ctx = LintCtx { files, root };
        for rule in &rules {
            rule.check_tree(&ctx, &mut raw);
        }
    }
    // Apply suppressions. `bad-allow` findings cannot be allowed away.
    let by_path: std::collections::HashMap<&str, &SourceFile> =
        files.iter().map(|f| (f.rel_path.as_str(), f)).collect();
    let total = raw.len();
    let mut kept: Vec<Finding> = raw
        .into_iter()
        .filter(|f| {
            f.rule == "bad-allow"
                || !by_path
                    .get(f.path.as_str())
                    .is_some_and(|sf| sf.is_allowed(f.rule, f.line))
        })
        .collect();
    findings::assign_keys(&mut kept);
    Analysis {
        suppressed: total - kept.len(),
        files_scanned: files.len(),
        findings: kept,
    }
}

/// Run the fixture corpus under `root/crates/analyze/fixtures`: every
/// fixture file declares a pretend workspace path and its expected
/// findings; the corpus proves each rule still fires. Returns a list of
/// mismatch descriptions (empty = pass).
pub fn check_fixtures(root: &Path) -> std::io::Result<Vec<String>> {
    let dir = root.join("crates/analyze/fixtures");
    let mut files = Vec::new();
    let mut expected: std::collections::BTreeMap<(String, String), usize> = Default::default();
    let mut entries: Vec<_> = std::fs::read_dir(&dir)?
        .flatten()
        .map(|e| e.path())
        .collect();
    entries.sort();
    for path in entries {
        if path.extension().and_then(|e| e.to_str()) != Some("rs") {
            continue;
        }
        let text = std::fs::read_to_string(&path)?;
        let pretend = text
            .lines()
            .find_map(|l| l.trim().strip_prefix("// analyze-fixture-path: "))
            .map(str::trim)
            .ok_or_else(|| {
                std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    format!(
                        "{}: missing `// analyze-fixture-path:` header",
                        path.display()
                    ),
                )
            })?
            .to_string();
        for line in text.lines() {
            if let Some(rule) = line.trim().strip_prefix("// expect-finding: ") {
                *expected
                    .entry((pretend.clone(), rule.trim().to_string()))
                    .or_insert(0) += 1;
            }
        }
        files.push(SourceFile::from_text(
            pretend.clone(),
            text,
            classify(&pretend),
        ));
    }
    // Per-file and feature-twin rules run against the pretend paths; the
    // registry/docs rule is exercised separately below.
    let rules = lints::all_rules();
    let mut raw = Vec::new();
    for rule in &rules {
        for file in &files {
            rule.check_file(file, &mut raw);
        }
        if rule.id() == "feature-gate" {
            let ctx = LintCtx {
                files: &files,
                root,
            };
            rule.check_tree(&ctx, &mut raw);
        }
    }
    // Apply the same suppression semantics as a real run, so fixtures can
    // prove that documented allows are honoured (and that `bad-allow`
    // findings cannot be allowed away).
    let by_path: std::collections::HashMap<&str, &SourceFile> =
        files.iter().map(|f| (f.rel_path.as_str(), f)).collect();
    raw.retain(|f| {
        f.rule == "bad-allow"
            || !by_path
                .get(f.path.as_str())
                .is_some_and(|sf| sf.is_allowed(f.rule, f.line))
    });
    let mut got: std::collections::BTreeMap<(String, String), usize> = Default::default();
    for f in &raw {
        *got.entry((f.path.clone(), f.rule.to_string())).or_insert(0) += 1;
    }
    let mut errors = Vec::new();
    let keys: std::collections::BTreeSet<_> = expected.keys().chain(got.keys()).cloned().collect();
    for key in keys {
        let want = expected.get(&key).copied().unwrap_or(0);
        let have = got.get(&key).copied().unwrap_or(0);
        if want != have {
            errors.push(format!(
                "{} [{}]: expected {} finding(s), got {}",
                key.0, key.1, want, have
            ));
        }
    }
    // `metric-registry` fires on drift: prove it against a scratch root
    // holding a stale registry and an unmarked DESIGN.md.
    let scratch = root.join("target/analyze-fixtures-scratch");
    std::fs::create_dir_all(scratch.join("crates/telemetry/src"))?;
    std::fs::write(
        scratch.join("crates/telemetry/src/names.rs"),
        "// deliberately stale\n",
    )?;
    std::fs::write(scratch.join("DESIGN.md"), "# no markers here\n")?;
    let mut drift = Vec::new();
    let ctx = LintCtx {
        files: &[],
        root: &scratch,
    };
    lints::metrics::MetricRegistry.check_tree(&ctx, &mut drift);
    if !drift
        .iter()
        .any(|f| f.message.contains("stale") || f.message.contains("drifted"))
        || !drift.iter().any(|f| f.message.contains("markers"))
    {
        errors.push("metric-registry did not fire on a stale scratch tree".to_string());
    }
    Ok(errors)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suppressed_findings_are_counted_not_reported() {
        let files = vec![SourceFile::from_text(
            "crates/core/src/x.rs".into(),
            "// cuart-allow: panic-path documented invariant here\n\
             fn f(x: Option<u32>) -> u32 { x.unwrap() }\n\
             fn g(x: Option<u32>) -> u32 { x.unwrap() }\n"
                .into(),
            source::Tier::Lib,
        )];
        let a = analyze_files(&files, Path::new("."), false);
        assert_eq!(a.suppressed, 1);
        assert_eq!(a.findings.len(), 1);
        assert_eq!(a.findings[0].line, 3);
    }

    #[test]
    fn bad_allow_cannot_suppress_itself() {
        let files = vec![SourceFile::from_text(
            "crates/core/src/x.rs".into(),
            "// cuart-allow-file: bad-allow trying to silence the auditor\n\
             // cuart-allow: nonexistent-rule some reason\n\
             fn f() {}\n"
                .into(),
            source::Tier::Lib,
        )];
        let a = analyze_files(&files, Path::new("."), false);
        assert!(
            a.findings.iter().any(|f| f.rule == "bad-allow"),
            "{:#?}",
            a.findings
        );
    }
}
