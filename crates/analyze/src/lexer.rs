//! A lightweight Rust lexer — just enough structure for the lints.
//!
//! The scanner produces a flat token stream with byte offsets and line
//! numbers. It understands the lexical shapes that would otherwise break
//! a text-level lint: nested block comments, raw strings (`r#"…"#`),
//! byte strings, char literals vs. lifetimes, and multi-character
//! operators (so `+=` is one token, distinguishable from `+` `=`).
//! It does **not** build an AST; the lints pattern-match on the stream.

/// One lexical token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    pub kind: TokenKind,
    /// Byte offset of the first character in the source.
    pub start: usize,
    /// Byte offset one past the last character.
    pub end: usize,
    /// 1-based line of `start`.
    pub line: u32,
}

#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (`fn`, `unwrap`, `cfg`, …).
    Ident(String),
    /// Lifetime (`'a`) — kept distinct so `'a` is never a char literal.
    Lifetime(String),
    /// String literal; the payload is the *unquoted, unescaped-as-written*
    /// contents (escape sequences are left verbatim — the lints only
    /// match plain names that contain no escapes).
    Str(String),
    /// Char or byte literal (contents unused by the lints).
    Char,
    /// Numeric literal.
    Num(String),
    /// Line comment, including doc comments; payload excludes the `//`.
    LineComment(String),
    /// Block comment (possibly nested); payload excludes delimiters.
    BlockComment(String),
    /// Operator / punctuation, multi-character where Rust has one
    /// (`::`, `->`, `+=`, `..=`, …).
    Punct(&'static str),
}

impl Token {
    pub fn ident(&self) -> Option<&str> {
        match &self.kind {
            TokenKind::Ident(s) => Some(s),
            _ => None,
        }
    }
    pub fn is_punct(&self, p: &str) -> bool {
        matches!(&self.kind, TokenKind::Punct(q) if *q == p)
    }
    pub fn str_lit(&self) -> Option<&str> {
        match &self.kind {
            TokenKind::Str(s) => Some(s),
            _ => None,
        }
    }
    pub fn is_comment(&self) -> bool {
        matches!(
            self.kind,
            TokenKind::LineComment(_) | TokenKind::BlockComment(_)
        )
    }
}

/// Multi-character operators, longest first so maximal munch wins.
const PUNCTS: &[&str] = &[
    "<<=", ">>=", "..=", "...", "::", "->", "=>", "==", "!=", "<=", ">=", "&&", "||", "+=", "-=",
    "*=", "/=", "%=", "^=", "&=", "|=", "<<", ">>", "..",
];

const SINGLE_PUNCTS: &[(&str, char)] = &[
    ("+", '+'),
    ("-", '-'),
    ("*", '*'),
    ("/", '/'),
    ("%", '%'),
    ("^", '^'),
    ("!", '!'),
    ("&", '&'),
    ("|", '|'),
    ("=", '='),
    (">", '>'),
    ("<", '<'),
    ("@", '@'),
    ("_", '_'),
    (".", '.'),
    (",", ','),
    (";", ';'),
    (":", ':'),
    ("#", '#'),
    ("$", '$'),
    ("?", '?'),
    ("(", '('),
    (")", ')'),
    ("[", '['),
    ("]", ']'),
    ("{", '{'),
    ("}", '}'),
    ("'", '\''),
    ("~", '~'),
];

fn single_punct(c: char) -> Option<&'static str> {
    SINGLE_PUNCTS
        .iter()
        .find(|(_, ch)| *ch == c)
        .map(|(s, _)| *s)
}

/// Tokenize `src`. Unknown bytes are skipped (the lints treat them as
/// noise); the scanner never panics on malformed input, it just stops
/// producing structure for it.
pub fn lex(src: &str) -> Vec<Token> {
    let bytes = src.as_bytes();
    let mut toks = Vec::new();
    let mut i = 0usize;
    let mut line: u32 = 1;
    let n = bytes.len();

    macro_rules! count_lines {
        ($range:expr) => {
            line += bytes[$range].iter().filter(|&&b| b == b'\n').count() as u32
        };
    }

    while i < n {
        let c = bytes[i] as char;
        let start = i;
        let start_line = line;

        // Whitespace.
        if c.is_ascii_whitespace() {
            if c == '\n' {
                line += 1;
            }
            i += 1;
            continue;
        }

        // Comments.
        if c == '/' && i + 1 < n {
            match bytes[i + 1] {
                b'/' => {
                    let mut j = i + 2;
                    while j < n && bytes[j] != b'\n' {
                        j += 1;
                    }
                    toks.push(Token {
                        kind: TokenKind::LineComment(src[i + 2..j].to_string()),
                        start,
                        end: j,
                        line: start_line,
                    });
                    i = j;
                    continue;
                }
                b'*' => {
                    let mut depth = 1usize;
                    let mut j = i + 2;
                    while j < n && depth > 0 {
                        if j + 1 < n && bytes[j] == b'/' && bytes[j + 1] == b'*' {
                            depth += 1;
                            j += 2;
                        } else if j + 1 < n && bytes[j] == b'*' && bytes[j + 1] == b'/' {
                            depth -= 1;
                            j += 2;
                        } else {
                            j += 1;
                        }
                    }
                    count_lines!(i..j);
                    let body_end = j.saturating_sub(2).max(i + 2);
                    toks.push(Token {
                        kind: TokenKind::BlockComment(src[i + 2..body_end].to_string()),
                        start,
                        end: j,
                        line: start_line,
                    });
                    i = j;
                    continue;
                }
                _ => {}
            }
        }

        // Raw / byte strings: r"…", r#"…"#, br#"…"#, b"…".
        if c == 'r' || c == 'b' {
            if let Some((tok, next)) = try_raw_or_byte_string(src, i) {
                count_lines!(i..next);
                toks.push(Token {
                    kind: tok,
                    start,
                    end: next,
                    line: start_line,
                });
                i = next;
                continue;
            }
        }

        // Plain strings.
        if c == '"' {
            let (value, next) = scan_quoted(src, i, '"');
            count_lines!(i..next);
            toks.push(Token {
                kind: TokenKind::Str(value),
                start,
                end: next,
                line: start_line,
            });
            i = next;
            continue;
        }

        // Char literal vs lifetime.
        if c == '\'' {
            let rest = &bytes[i + 1..];
            let is_char = match rest.first() {
                Some(b'\\') => true,
                Some(&b2) if b2 != b'\'' => {
                    // `'x'` is a char; `'x` followed by anything else is a
                    // lifetime. Look one UTF-8 char ahead for the close quote.
                    let w = utf8_width(b2);
                    rest.get(w) == Some(&b'\'')
                }
                _ => false,
            };
            if is_char {
                let (_, next) = scan_quoted(src, i, '\'');
                toks.push(Token {
                    kind: TokenKind::Char,
                    start,
                    end: next,
                    line: start_line,
                });
                i = next;
            } else {
                let mut j = i + 1;
                while j < n && (bytes[j].is_ascii_alphanumeric() || bytes[j] == b'_') {
                    j += 1;
                }
                if j == i + 1 {
                    // Bare quote (e.g. inside a macro): treat as punct.
                    toks.push(Token {
                        kind: TokenKind::Punct("'"),
                        start,
                        end: i + 1,
                        line: start_line,
                    });
                    i += 1;
                } else {
                    toks.push(Token {
                        kind: TokenKind::Lifetime(src[i + 1..j].to_string()),
                        start,
                        end: j,
                        line: start_line,
                    });
                    i = j;
                }
            }
            continue;
        }

        // Numbers.
        if c.is_ascii_digit() {
            let mut j = i + 1;
            while j < n && (bytes[j].is_ascii_alphanumeric() || bytes[j] == b'_') {
                j += 1;
            }
            // Fractional part — but not a `..` range.
            if j < n && bytes[j] == b'.' && j + 1 < n && bytes[j + 1].is_ascii_digit() {
                j += 1;
                while j < n && (bytes[j].is_ascii_alphanumeric() || bytes[j] == b'_') {
                    j += 1;
                }
            }
            toks.push(Token {
                kind: TokenKind::Num(src[i..j].to_string()),
                start,
                end: j,
                line: start_line,
            });
            i = j;
            continue;
        }

        // Identifiers / keywords (ASCII is enough for this codebase).
        if c.is_ascii_alphabetic() || c == '_' {
            let mut j = i + 1;
            while j < n && (bytes[j].is_ascii_alphanumeric() || bytes[j] == b'_') {
                j += 1;
            }
            // A lone `_` is punctuation-ish, but Ident("_") is harmless.
            toks.push(Token {
                kind: TokenKind::Ident(src[i..j].to_string()),
                start,
                end: j,
                line: start_line,
            });
            i = j;
            continue;
        }

        // Multi-char operators, longest first.
        let rest = &src[i..];
        if let Some(p) = PUNCTS.iter().find(|p| rest.starts_with(**p)) {
            toks.push(Token {
                kind: TokenKind::Punct(p),
                start,
                end: i + p.len(),
                line: start_line,
            });
            i += p.len();
            continue;
        }
        if let Some(p) = single_punct(c) {
            toks.push(Token {
                kind: TokenKind::Punct(p),
                start,
                end: i + 1,
                line: start_line,
            });
            i += 1;
            continue;
        }

        // Unknown byte (non-ASCII in code, stray symbol): skip.
        i += utf8_width(bytes[i]).max(1);
    }
    toks
}

fn utf8_width(b: u8) -> usize {
    match b {
        0x00..=0x7f => 1,
        0xc0..=0xdf => 2,
        0xe0..=0xef => 3,
        _ => 4,
    }
}

/// Scan a quoted literal starting at `i` (which holds the opening quote),
/// honouring backslash escapes. Returns (contents, index past close quote).
fn scan_quoted(src: &str, i: usize, quote: char) -> (String, usize) {
    let bytes = src.as_bytes();
    let n = bytes.len();
    let mut j = i + 1;
    while j < n {
        match bytes[j] {
            b'\\' => j += 2,
            b if b == quote as u8 => {
                return (src[i + 1..j].to_string(), j + 1);
            }
            _ => j += 1,
        }
    }
    (src[i + 1..n.min(j)].to_string(), n)
}

/// Try to scan `r"…"` / `r#"…"#` / `b"…"` / `br#"…"#` starting at `i`.
fn try_raw_or_byte_string(src: &str, i: usize) -> Option<(TokenKind, usize)> {
    let bytes = src.as_bytes();
    let n = bytes.len();
    let mut j = i;
    if bytes[j] == b'b' {
        j += 1;
    }
    let raw = j < n && bytes[j] == b'r';
    if raw {
        j += 1;
    }
    if !raw {
        // b"…" only; a bare `b` identifier is handled by the ident path.
        if j < n && bytes[j] == b'"' && j > i {
            let (value, next) = scan_quoted(src, j, '"');
            return Some((TokenKind::Str(value), next));
        }
        return None;
    }
    let mut hashes = 0usize;
    while j < n && bytes[j] == b'#' {
        hashes += 1;
        j += 1;
    }
    if j >= n || bytes[j] != b'"' {
        return None;
    }
    let body_start = j + 1;
    let closer: Vec<u8> = std::iter::once(b'"')
        .chain(std::iter::repeat(b'#').take(hashes))
        .collect();
    let mut k = body_start;
    while k < n {
        if bytes[k] == b'"' && bytes[k..].starts_with(&closer) {
            return Some((
                TokenKind::Str(src[body_start..k].to_string()),
                k + closer.len(),
            ));
        }
        k += 1;
    }
    Some((TokenKind::Str(src[body_start..n].to_string()), n))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        lex(src).into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn idents_strings_and_ops() {
        let k = kinds(r#"let x = a.unwrap() + "cuart.x";"#);
        assert!(k.contains(&TokenKind::Ident("unwrap".into())));
        assert!(k.contains(&TokenKind::Str("cuart.x".into())));
        assert!(k.contains(&TokenKind::Punct("+")));
    }

    #[test]
    fn compound_assign_is_one_token() {
        let k = kinds("total += n; x -= 1; y *= 2; z == 3");
        assert!(k.contains(&TokenKind::Punct("+=")));
        assert!(k.contains(&TokenKind::Punct("-=")));
        assert!(k.contains(&TokenKind::Punct("*=")));
        assert!(k.contains(&TokenKind::Punct("==")));
        assert!(!k.contains(&TokenKind::Punct("=")));
    }

    #[test]
    fn lifetimes_are_not_chars() {
        let k = kinds("fn f<'a>(x: &'a str) { let c = 'x'; let nl = '\\n'; }");
        assert_eq!(
            k.iter()
                .filter(|t| matches!(t, TokenKind::Lifetime(_)))
                .count(),
            2
        );
        assert_eq!(k.iter().filter(|t| **t == TokenKind::Char).count(), 2);
    }

    #[test]
    fn raw_and_byte_strings() {
        let k = kinds(r###"let a = r#"raw "inner" text"#; let b = b"bytes"; let c = r"plain";"###);
        assert!(k.contains(&TokenKind::Str("raw \"inner\" text".into())));
        assert!(k.contains(&TokenKind::Str("bytes".into())));
        assert!(k.contains(&TokenKind::Str("plain".into())));
    }

    #[test]
    fn nested_block_comments_and_doc_lines() {
        let k = kinds("/* outer /* inner */ still */ /// doc\ncode");
        assert!(matches!(&k[0], TokenKind::BlockComment(c) if c.contains("inner")));
        assert!(matches!(&k[1], TokenKind::LineComment(c) if c.contains("doc")));
        assert!(k.contains(&TokenKind::Ident("code".into())));
    }

    #[test]
    fn line_numbers_advance_through_strings_and_comments() {
        let toks = lex("a\n\"two\nlines\"\n/*\n*/\nb");
        let b = toks.iter().find(|t| t.ident() == Some("b")).unwrap();
        assert_eq!(b.line, 6);
    }

    #[test]
    fn range_is_not_a_float() {
        let k = kinds("for i in 0..n {}");
        assert!(k.contains(&TokenKind::Num("0".into())));
        assert!(k.contains(&TokenKind::Punct("..")));
    }
}
