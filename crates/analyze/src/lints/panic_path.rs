//! `panic-path` and `index-hot-path`: no panicking constructs in
//! non-test library code.
//!
//! Motivated by PR 2 (typed `CuartError` replacing panic paths) — a
//! serving engine must return errors, not abort. Library crates (core,
//! host, gpu-sim, grt, art, telemetry) may not call
//! `unwrap`/`expect`/`panic!`/`unreachable!`/`todo!`/`unimplemented!`
//! outside test code; tool crates (bench, cli, workloads, analyze) keep
//! `expect` but the message must be non-empty. Intentional sites carry
//! `// cuart-allow: panic-path <reason>`.

use super::Lint;
use crate::findings::Finding;
use crate::source::{SourceFile, Tier};

/// Macros that abort.
const PANIC_MACROS: &[&str] = &["panic", "unreachable", "todo", "unimplemented"];

pub struct PanicPath;

impl Lint for PanicPath {
    fn id(&self) -> &'static str {
        "panic-path"
    }
    fn describe(&self) -> &'static str {
        "no unwrap/expect/panic!/unreachable! in non-test library code"
    }

    fn check_file(&self, file: &SourceFile, out: &mut Vec<Finding>) {
        if file.tier == Tier::Skip {
            return;
        }
        let toks: Vec<_> = file.code_tokens().map(|(_, t)| t).collect();
        for (i, t) in toks.iter().enumerate() {
            if file.in_test_code(t.start) {
                continue;
            }
            let Some(name) = t.ident() else { continue };
            let prev_dot = i > 0 && toks[i - 1].is_punct(".");
            let next_paren = toks.get(i + 1).is_some_and(|n| n.is_punct("("));
            let next_bang = toks.get(i + 1).is_some_and(|n| n.is_punct("!"));

            let mut push = |message: String| {
                out.push(Finding {
                    rule: "panic-path",
                    path: file.rel_path.clone(),
                    line: t.line,
                    message,
                    snippet: file.line_text(t.line).to_string(),
                    key: String::new(),
                });
            };

            match name {
                "unwrap" if prev_dot && next_paren => {
                    // Tool crates convert `unwrap()` to `expect("why")`;
                    // library crates return a typed error instead.
                    push(format!(
                        "`.unwrap()` in {} code: return a typed error{}",
                        tier_word(file.tier),
                        if file.tier == Tier::Tool {
                            " or use `.expect(\"why\")`"
                        } else {
                            " (`CuartError`) or document with cuart-allow"
                        }
                    ));
                }
                "expect" if prev_dot && next_paren => {
                    if file.tier == Tier::Lib {
                        push(
                            "`.expect()` in library code: return a typed error (`CuartError`) \
                             or document with cuart-allow"
                                .to_string(),
                        );
                    } else {
                        // Tool tier: the message must be a non-empty literal
                        // (a non-literal argument is assumed intentional).
                        let msg_empty = toks
                            .get(i + 2)
                            .and_then(|a| a.str_lit())
                            .is_some_and(|s| s.trim().is_empty())
                            || toks.get(i + 2).is_some_and(|a| a.is_punct(")"));
                        if msg_empty {
                            push(
                                "`.expect(\"\")` without a message: say what invariant failed"
                                    .to_string(),
                            );
                        }
                    }
                }
                m if PANIC_MACROS.contains(&m) && next_bang && file.tier == Tier::Lib => {
                    // `unreachable!` behind an exhaustive match is the one
                    // common legitimate use — it still needs the allow so
                    // the invariant is written down.
                    push(format!(
                        "`{m}!` in library code: return a typed error (`CuartError`) \
                         or document with cuart-allow"
                    ));
                }
                _ => {}
            }
        }
    }
}

/// Hot-path files where bracket indexing is audited: the kernel inner
/// loops execute per lane per step, and a bounds panic there aborts the
/// whole simulated device. Indexing is allowed only under a file-level
/// `cuart-allow-file: index-hot-path <bounds invariant>`.
const HOT_PATHS: &[&str] = &[
    "crates/core/src/kernels.rs",
    "crates/grt/src/kernels.rs",
    "crates/gpu-sim/src/exec.rs",
];

pub struct IndexHotPath;

impl Lint for IndexHotPath {
    fn id(&self) -> &'static str {
        "index-hot-path"
    }
    fn describe(&self) -> &'static str {
        "bracket indexing in kernel hot paths needs a documented bounds invariant"
    }

    fn check_file(&self, file: &SourceFile, out: &mut Vec<Finding>) {
        if !HOT_PATHS.contains(&file.rel_path.as_str()) {
            return;
        }
        let toks: Vec<_> = file.code_tokens().map(|(_, t)| t).collect();
        for (i, t) in toks.iter().enumerate() {
            if !t.is_punct("[") || file.in_test_code(t.start) {
                continue;
            }
            // Indexing only: the `[` must follow an expression tail
            // (identifier, `)`, or `]`) — not an attribute `#[…]`, array
            // literal or type position.
            let is_index = i > 0
                && (toks[i - 1].ident().is_some()
                    || toks[i - 1].is_punct(")")
                    || toks[i - 1].is_punct("]"))
                && !(i > 1 && toks[i - 2].is_punct("#"));
            if !is_index {
                continue;
            }
            out.push(Finding {
                rule: "index-hot-path",
                path: file.rel_path.clone(),
                line: t.line,
                message: "bracket indexing in a kernel hot path: use `get()` with a typed \
                          error, or document the bounds invariant with cuart-allow"
                    .to_string(),
                snippet: file.line_text(t.line).to_string(),
                key: String::new(),
            });
        }
    }
}

fn tier_word(tier: Tier) -> &'static str {
    match tier {
        Tier::Lib => "library",
        Tier::Tool => "tool-crate",
        Tier::Skip => "skipped",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::SourceFile;

    fn run(rule: &dyn Lint, path: &str, text: &str, tier: Tier) -> Vec<Finding> {
        let f = SourceFile::from_text(path.into(), text.into(), tier);
        let mut out = Vec::new();
        rule.check_file(&f, &mut out);
        out
    }

    #[test]
    fn lib_tier_flags_all_panic_constructs() {
        let text = r#"
fn f(x: Option<u32>) -> u32 {
    let a = x.unwrap();
    let b = x.expect("msg");
    if a > b { panic!("boom"); }
    match a { 0 => 0, _ => unreachable!() }
}
"#;
        let out = run(&PanicPath, "crates/core/src/x.rs", text, Tier::Lib);
        assert_eq!(out.len(), 4, "{out:#?}");
    }

    #[test]
    fn tool_tier_keeps_expect_with_message() {
        let text = r#"
fn f(x: Option<u32>) -> u32 {
    let a = x.unwrap();
    let b = x.expect("meaningful message");
    let c = x.expect("");
    panic!("tools may panic");
    a + b + c
}
"#;
        let out = run(&PanicPath, "crates/cli/src/x.rs", text, Tier::Tool);
        let rules: Vec<&str> = out.iter().map(|f| f.snippet.as_str()).collect();
        assert_eq!(out.len(), 2, "{rules:?}");
        assert!(out[0].snippet.contains("unwrap"));
        assert!(out[1].snippet.contains("expect(\"\")"));
    }

    #[test]
    fn test_code_and_unrelated_idents_are_exempt() {
        let text = r#"
fn unwrap() {}
fn g(x: Option<u32>) -> Option<u32> { x.unwrap_or(7); x.map(unwrap_helper) }
#[cfg(test)]
mod tests {
    #[test]
    fn t() { Some(1).unwrap(); panic!("fine in tests"); }
}
"#;
        let out = run(&PanicPath, "crates/core/src/x.rs", text, Tier::Lib);
        assert!(out.is_empty(), "{out:#?}");
    }

    #[test]
    fn index_hot_path_flags_indexing_not_attributes() {
        let text = r#"
#[derive(Clone)]
struct K { v: Vec<u32> }
fn lane(k: &K, i: usize, t: [u32; 4]) -> u32 {
    let a = k.v[i];
    let b = t[0];
    a + b
}
"#;
        let out = run(&IndexHotPath, "crates/core/src/kernels.rs", text, Tier::Lib);
        assert_eq!(out.len(), 2, "{out:#?}");
        let none = run(&IndexHotPath, "crates/core/src/api.rs", text, Tier::Lib);
        assert!(none.is_empty());
    }
}
