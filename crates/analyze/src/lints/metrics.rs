//! `metric-name`, `span-name`, `metric-registry`: every series/span name
//! flows through the generated registry, and docs cannot drift from it.
//!
//! * `metric-name` — a `"cuart.*"` / `"grt.*"` string literal outside
//!   the registry and outside tests must be replaced by its
//!   `cuart_telemetry::names::*` constant.
//! * `span-name` — `SpanNode::leaf("…")` / `SpanNode::node("…")` with a
//!   literal name must use `names::spans::*`; unknown span names are
//!   flagged even when constants are used elsewhere.
//! * `metric-registry` — `crates/telemetry/src/names.rs` must be exactly
//!   what `--emit-registry` generates, and the DESIGN.md §6 metric table
//!   (between the `<!-- analyze:metric-table -->` markers) must be
//!   exactly what `--emit-design-table` generates; every registered span
//!   name must appear in DESIGN.md §6.1.

use super::{Lint, LintCtx};
use crate::findings::Finding;
use crate::registry;
use crate::source::{SourceFile, Tier};

/// Does a string literal look like a series name? Namespace prefix plus
/// at least one further dotted segment of metric-ish characters.
fn looks_like_metric(s: &str) -> bool {
    let rest = s.strip_prefix("cuart.").or_else(|| s.strip_prefix("grt."));
    match rest {
        Some(r) => {
            !r.is_empty()
                && r.chars()
                    .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '.' || c == '_')
        }
        None => false,
    }
}

pub struct MetricName;

impl Lint for MetricName {
    fn id(&self) -> &'static str {
        "metric-name"
    }
    fn describe(&self) -> &'static str {
        "cuart.*/grt.* series names must come from the generated registry"
    }

    fn check_file(&self, file: &SourceFile, out: &mut Vec<Finding>) {
        if file.tier == Tier::Skip || file.rel_path.starts_with("crates/analyze/") {
            return;
        }
        for (_, t) in file.code_tokens() {
            if file.in_test_code(t.start) {
                continue;
            }
            let Some(s) = t.str_lit() else { continue };
            if !looks_like_metric(s) {
                continue;
            }
            let known = registry::METRICS.iter().find(|m| m.name == s);
            let message = match known {
                Some(m) => format!(
                    "metric name literal \"{s}\": use `cuart_telemetry::names::{}`",
                    m.konst
                ),
                None => format!(
                    "unregistered series name literal \"{s}\": add it to \
                     crates/analyze/src/registry.rs and regenerate"
                ),
            };
            out.push(Finding {
                rule: "metric-name",
                path: file.rel_path.clone(),
                line: t.line,
                message,
                snippet: file.line_text(t.line).to_string(),
                key: String::new(),
            });
        }
    }
}

pub struct SpanName;

impl Lint for SpanName {
    fn id(&self) -> &'static str {
        "span-name"
    }
    fn describe(&self) -> &'static str {
        "SpanNode names must come from the registry's spans module"
    }

    fn check_file(&self, file: &SourceFile, out: &mut Vec<Finding>) {
        // The tracing module itself and tests may spell names out.
        if file.tier == Tier::Skip
            || file.rel_path.starts_with("crates/analyze/")
            || file.rel_path == "crates/telemetry/src/tracing.rs"
        {
            return;
        }
        let toks: Vec<_> = file.code_tokens().map(|(_, t)| t).collect();
        for (i, t) in toks.iter().enumerate() {
            // Pattern: `SpanNode :: (leaf|node) ( "…"`.
            if !matches!(t.ident(), Some("leaf" | "node")) {
                continue;
            }
            if !(i >= 2
                && toks[i - 1].is_punct("::")
                && toks[i - 2].ident() == Some("SpanNode")
                && toks.get(i + 1).is_some_and(|p| p.is_punct("(")))
            {
                continue;
            }
            let Some(name_tok) = toks.get(i + 2) else {
                continue;
            };
            let Some(s) = name_tok.str_lit() else {
                continue; // a constant or expression — fine
            };
            if file.in_test_code(t.start) {
                continue;
            }
            let known = registry::SPANS.iter().find(|d| d.name == s);
            let message = match known {
                Some(d) => format!(
                    "span name literal \"{s}\": use `cuart_telemetry::names::spans::{}`",
                    d.konst
                ),
                None => format!(
                    "unregistered span name \"{s}\": add it to \
                     crates/analyze/src/registry.rs and regenerate"
                ),
            };
            out.push(Finding {
                rule: "span-name",
                path: file.rel_path.clone(),
                line: name_tok.line,
                message,
                snippet: file.line_text(name_tok.line).to_string(),
                key: String::new(),
            });
        }
    }
}

/// Markers bracketing the generated metric table in DESIGN.md.
pub const TABLE_BEGIN: &str = "<!-- analyze:metric-table:begin -->";
pub const TABLE_END: &str = "<!-- analyze:metric-table:end -->";

pub struct MetricRegistry;

impl MetricRegistry {
    fn finding(path: &str, message: String) -> Finding {
        Finding {
            rule: "metric-registry",
            path: path.to_string(),
            line: 1,
            message,
            snippet: String::new(),
            key: String::new(),
        }
    }
}

impl Lint for MetricRegistry {
    fn id(&self) -> &'static str {
        "metric-registry"
    }
    fn describe(&self) -> &'static str {
        "generated registry and DESIGN.md metric/span tables match the catalog"
    }

    fn check_tree(&self, ctx: &LintCtx<'_>, out: &mut Vec<Finding>) {
        // 1. The generated registry module is current.
        let names_path = ctx.root.join("crates/telemetry/src/names.rs");
        match std::fs::read_to_string(&names_path) {
            Ok(actual) => {
                if actual != registry::generate_names_rs() {
                    out.push(Self::finding(
                        "crates/telemetry/src/names.rs",
                        "generated registry is stale: run \
                         `cargo run -p cuart-analyze -- --emit-registry`"
                            .to_string(),
                    ));
                }
            }
            Err(e) => out.push(Self::finding(
                "crates/telemetry/src/names.rs",
                format!("cannot read generated registry: {e}"),
            )),
        }

        // 2. The DESIGN.md metric table is current, and every span name
        //    is documented.
        let design_path = ctx.root.join("DESIGN.md");
        let design = match std::fs::read_to_string(&design_path) {
            Ok(d) => d,
            Err(e) => {
                out.push(Self::finding("DESIGN.md", format!("cannot read: {e}")));
                return;
            }
        };
        match extract_between(&design, TABLE_BEGIN, TABLE_END) {
            Some(block) => {
                if block.trim() != registry::generate_metric_table().trim() {
                    out.push(Self::finding(
                        "DESIGN.md",
                        "metric table drifted from the registry: run \
                         `cargo run -p cuart-analyze -- --emit-design-table`"
                            .to_string(),
                    ));
                }
            }
            None => out.push(Self::finding(
                "DESIGN.md",
                format!("missing metric-table markers {TABLE_BEGIN} … {TABLE_END}"),
            )),
        }
        for s in registry::SPANS {
            if !design.contains(&format!("`{}`", s.name)) {
                out.push(Self::finding(
                    "DESIGN.md",
                    format!("span `{}` is registered but undocumented in §6.1", s.name),
                ));
            }
        }
    }
}

fn extract_between<'a>(text: &'a str, begin: &str, end: &str) -> Option<&'a str> {
    let b = text.find(begin)? + begin.len();
    let e = text[b..].find(end)? + b;
    Some(&text[b..e])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::{SourceFile, Tier};

    fn run(rule: &dyn Lint, path: &str, text: &str, tier: Tier) -> Vec<Finding> {
        let f = SourceFile::from_text(path.into(), text.into(), tier);
        let mut out = Vec::new();
        rule.check_file(&f, &mut out);
        out
    }

    #[test]
    fn literal_metric_names_are_flagged_with_their_const() {
        let text = r#"fn f(t: &T) { t.incr("cuart.lookup.batches", 1); t.incr("cuart.not.registered", 1); }"#;
        let out = run(&MetricName, "crates/core/src/api.rs", text, Tier::Lib);
        assert_eq!(out.len(), 2, "{out:#?}");
        assert!(out[0].message.contains("names::LOOKUP_BATCHES"));
        assert!(out[1].message.contains("unregistered"));
    }

    #[test]
    fn non_metric_strings_and_tests_pass() {
        let text = r#"
fn f() -> &'static str { "cuart. is the namespace"; "cuart-analyze"; "grt" }
#[cfg(test)]
mod tests {
    #[test]
    fn t() { assert_eq!(x, "cuart.lookup.batches"); }
}
"#;
        let out = run(&MetricName, "crates/core/src/api.rs", text, Tier::Lib);
        assert!(out.is_empty(), "{out:#?}");
    }

    #[test]
    fn span_literals_are_flagged() {
        let text = r#"
fn f() {
    let a = SpanNode::leaf("h2d", 5);
    let b = SpanNode::node("mystery.span", vec![]);
    let c = SpanNode::leaf(names::spans::D2H, 5);
}
"#;
        let out = run(&SpanName, "crates/core/src/api.rs", text, Tier::Lib);
        assert_eq!(out.len(), 2, "{out:#?}");
        assert!(out[0].message.contains("spans::H2D"));
        assert!(out[1].message.contains("unregistered"));
    }

    #[test]
    fn extract_between_finds_the_block() {
        let text = "a\nBEGIN\nbody\nEND\nz";
        assert_eq!(extract_between(text, "BEGIN", "END"), Some("\nbody\n"));
        assert_eq!(extract_between(text, "NOPE", "END"), None);
    }
}
