//! `feature-gate`: optional features must not change the public API
//! surface.
//!
//! The workspace's `enabled` (telemetry) and `faults` (injector)
//! features follow a strict pattern: every `#[cfg(feature = "f")]`
//! **public** item has an API-identical `#[cfg(not(feature = "f"))]`
//! no-op twin, so `--no-default-features` builds compile every caller
//! unchanged. This rule finds gated public items with no matching
//! ungated twin — the bug class where a feature quietly removes API.

use super::{Lint, LintCtx};
use crate::findings::Finding;
use crate::lexer::Token;
use crate::source::{SourceFile, Tier};
use std::collections::{BTreeMap, BTreeSet};

/// Features covered by the twin rule. (`telemetry`-style forwarding
/// features on dependent crates resolve to these two.)
const FEATURES: &[&str] = &["enabled", "faults", "telemetry"];

/// One gated item occurrence.
#[derive(Debug)]
struct GatedItem {
    feature: String,
    negated: bool,
    /// Public (only `pub` items must have twins)?
    public: bool,
    /// Comparable identity: item keyword plus name-set (a `use` group
    /// compares by its re-exported leaf names).
    name: String,
    path: String,
    line: u32,
    snippet: String,
}

pub struct FeatureGate;

impl Lint for FeatureGate {
    fn id(&self) -> &'static str {
        "feature-gate"
    }
    fn describe(&self) -> &'static str {
        "feature-gated public items need an API-identical no-op twin"
    }

    fn check_tree(&self, ctx: &LintCtx<'_>, out: &mut Vec<Finding>) {
        // Group files by crate so twins may live in sibling modules
        // (telemetry's `real.rs` / `noop.rs` pattern).
        let mut by_crate: BTreeMap<String, Vec<&SourceFile>> = BTreeMap::new();
        for f in ctx.files {
            if f.tier == Tier::Skip {
                continue;
            }
            let krate = f
                .rel_path
                .splitn(3, '/')
                .take(2)
                .collect::<Vec<_>>()
                .join("/");
            by_crate.entry(krate).or_default().push(f);
        }
        for files in by_crate.values() {
            let mut items = Vec::new();
            for f in files {
                collect_gated_items(f, &mut items);
            }
            let negated: BTreeSet<(&str, &str)> = items
                .iter()
                .filter(|i| i.negated)
                .map(|i| (i.feature.as_str(), i.name.as_str()))
                .collect();
            for item in items.iter().filter(|i| !i.negated && i.public) {
                if negated.contains(&(item.feature.as_str(), item.name.as_str())) {
                    continue;
                }
                out.push(Finding {
                    rule: "feature-gate",
                    path: item.path.clone(),
                    line: item.line,
                    message: format!(
                        "public item gated on feature `{}` ({}) has no \
                         `#[cfg(not(feature = \"{}\"))]` no-op twin in this crate",
                        item.feature, item.name, item.feature
                    ),
                    snippet: item.snippet.clone(),
                    key: String::new(),
                });
            }
        }
    }
}

/// Scan one file for `#[cfg(… feature = "F" …)]`-gated items.
fn collect_gated_items(file: &SourceFile, out: &mut Vec<GatedItem>) {
    let toks: Vec<&Token> = file.code_tokens().map(|(_, t)| t).collect();
    let mut i = 0usize;
    while i < toks.len() {
        if !(toks[i].is_punct("#") && toks.get(i + 1).is_some_and(|t| t.is_punct("["))) {
            i += 1;
            continue;
        }
        let attr_line = toks[i].line;
        let attr_start = toks[i].start;
        // Walk the attribute, tracking a `not(…)` nesting stack.
        let mut j = i + 1;
        let mut depth = 0i32;
        let mut paren_stack: Vec<bool> = Vec::new(); // true = entered via `not(`
        let mut is_cfg = false;
        let mut gates: Vec<(String, bool)> = Vec::new();
        while j < toks.len() {
            let t = toks[j];
            if t.is_punct("[") {
                depth += 1;
                if depth == 0 {
                    break;
                }
            } else if t.is_punct("]") {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            } else if t.is_punct("(") {
                let via_not = j >= 1 && toks[j - 1].ident() == Some("not");
                paren_stack.push(via_not);
            } else if t.is_punct(")") {
                paren_stack.pop();
            } else if t.ident() == Some("cfg") {
                is_cfg = true;
            } else if t.ident() == Some("feature")
                && toks.get(j + 1).is_some_and(|n| n.is_punct("="))
            {
                if let Some(feat) = toks.get(j + 2).and_then(|n| n.str_lit()) {
                    let negated = paren_stack.iter().any(|&n| n);
                    gates.push((feat.to_string(), negated));
                }
            }
            j += 1;
        }
        let after_attr = j + 1;
        if !is_cfg || gates.is_empty() {
            i = after_attr;
            continue;
        }
        // Inner attributes (`#![cfg(…)]`) gate the enclosing module, not
        // a following item — out of scope for the twin rule.
        if file.in_test_code(attr_start) {
            i = after_attr;
            continue;
        }
        if let Some((public, name, end)) = parse_item(&toks, after_attr) {
            for (feature, negated) in gates {
                if !FEATURES.contains(&feature.as_str()) {
                    continue;
                }
                out.push(GatedItem {
                    feature,
                    negated,
                    public,
                    name: name.clone(),
                    path: file.rel_path.clone(),
                    line: attr_line,
                    snippet: file.line_text(attr_line).to_string(),
                });
            }
            i = end;
        } else {
            i = after_attr;
        }
    }
}

/// Parse the item that follows an attribute: returns (is_pub, identity,
/// index past the item header). Identity is `<keyword> <names>` where a
/// `use` group's names are its sorted re-exported leaves.
fn parse_item(toks: &[&Token], mut i: usize) -> Option<(bool, String, usize)> {
    // Skip stacked attributes.
    while toks.get(i)?.is_punct("#") && toks.get(i + 1).is_some_and(|t| t.is_punct("[")) {
        let mut depth = 0i32;
        i += 1;
        while i < toks.len() {
            if toks[i].is_punct("[") {
                depth += 1;
            } else if toks[i].is_punct("]") {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            i += 1;
        }
        i += 1;
    }
    // Visibility.
    let mut public = false;
    if toks.get(i)?.ident() == Some("pub") {
        public = true;
        i += 1;
        if toks.get(i)?.is_punct("(") {
            let mut depth = 0i32;
            while i < toks.len() {
                if toks[i].is_punct("(") {
                    depth += 1;
                } else if toks[i].is_punct(")") {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                i += 1;
            }
            i += 1;
        }
    }
    // Qualifiers.
    while matches!(
        toks.get(i)?.ident(),
        Some("unsafe" | "async" | "extern" | "default")
    ) || toks.get(i)?.str_lit().is_some()
    {
        i += 1;
    }
    let kw = toks.get(i)?.ident()?;
    match kw {
        "fn" | "struct" | "enum" | "trait" | "mod" | "type" | "const" | "static" | "macro" => {
            let name = toks.get(i + 1)?.ident()?;
            Some((public, format!("{kw} {name}"), i + 2))
        }
        "impl" => {
            // `impl<T> Name …` / `impl Name …` — identity is the first
            // type name after any generics.
            let mut k = i + 1;
            if toks.get(k)?.is_punct("<") {
                let mut depth = 0i32;
                while k < toks.len() {
                    if toks[k].is_punct("<") {
                        depth += 1;
                    } else if toks[k].is_punct(">") {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    k += 1;
                }
                k += 1;
            }
            let name = toks.get(k)?.ident()?;
            Some((public, format!("impl {name}"), k + 1))
        }
        "use" => {
            // Identity: sorted leaf names after the first path segment,
            // so `real::{A, B}` twins `noop::{A, B}`.
            let mut names = Vec::new();
            let mut k = i + 1;
            let mut first_segment = true;
            while k < toks.len() && !toks[k].is_punct(";") {
                if let Some(id) = toks[k].ident() {
                    if first_segment {
                        first_segment = false;
                    } else if id != "as" {
                        names.push(id.to_string());
                    }
                }
                k += 1;
            }
            names.sort();
            names.dedup();
            Some((public, format!("use {}", names.join(",")), k + 1))
        }
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::Path;

    fn run(texts: &[(&str, &str)]) -> Vec<Finding> {
        let files: Vec<SourceFile> = texts
            .iter()
            .map(|(p, t)| SourceFile::from_text(p.to_string(), t.to_string(), Tier::Lib))
            .collect();
        let ctx = LintCtx {
            files: &files,
            root: Path::new("."),
        };
        let mut out = Vec::new();
        FeatureGate.check_tree(&ctx, &mut out);
        out
    }

    #[test]
    fn gated_pub_fn_without_twin_is_flagged() {
        let out = run(&[(
            "crates/core/src/x.rs",
            "#[cfg(feature = \"faults\")]\npub fn inject(&mut self) {}\n",
        )]);
        assert_eq!(out.len(), 1, "{out:#?}");
        assert!(out[0].message.contains("faults"));
    }

    #[test]
    fn twin_in_a_sibling_module_satisfies_the_rule() {
        let out = run(&[
            (
                "crates/telemetry/src/a.rs",
                "#[cfg(feature = \"enabled\")]\npub use real::{Counter, Telemetry};\n",
            ),
            (
                "crates/telemetry/src/b.rs",
                "#[cfg(not(feature = \"enabled\"))]\npub use noop::{Telemetry, Counter};\n",
            ),
        ]);
        assert!(out.is_empty(), "{out:#?}");
    }

    #[test]
    fn private_items_and_other_features_are_exempt() {
        let out = run(&[(
            "crates/core/src/x.rs",
            "#[cfg(feature = \"faults\")]\nmod private_helper;\n\
             #[cfg(feature = \"exotic\")]\npub fn not_a_tracked_feature() {}\n",
        )]);
        assert!(out.is_empty(), "{out:#?}");
    }

    #[test]
    fn all_combinator_and_gated_impl() {
        let out = run(&[(
            "crates/gpu-sim/src/x.rs",
            "#[cfg(all(feature = \"faults\", not(feature = \"enabled\")))]\n\
             pub impl Injector { }\n",
        )]);
        // `faults` is positive (flagged), `enabled` is negated (twin side).
        assert_eq!(out.len(), 1, "{out:#?}");
        assert!(out[0].message.contains("`faults`"));
    }
}
