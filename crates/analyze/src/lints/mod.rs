//! The pluggable lint framework and the project-specific rules.
//!
//! Each rule is a [`Lint`]: per-file checks walk one token stream,
//! tree checks see every file at once (plus the workspace root, for
//! DESIGN.md and the generated registry). Suppression
//! (`// cuart-allow: <rule> <reason>`) and the baseline are applied by
//! the driver, not the rules, so rules always report everything they see.

pub mod arith;
pub mod feature_gate;
pub mod metrics;
pub mod panic_path;

use crate::findings::Finding;
use crate::source::SourceFile;
use std::path::Path;

/// Cross-file lint context.
pub struct LintCtx<'a> {
    pub files: &'a [SourceFile],
    /// Workspace root (for DESIGN.md / generated-registry checks).
    pub root: &'a Path,
}

/// One lint rule.
pub trait Lint {
    /// Stable rule id, usable in `cuart-allow:` comments.
    fn id(&self) -> &'static str;
    /// One-line description for `--list-rules` and the docs.
    fn describe(&self) -> &'static str;
    /// Per-file check.
    fn check_file(&self, _file: &SourceFile, _out: &mut Vec<Finding>) {}
    /// Whole-tree check (registry/docs consistency).
    fn check_tree(&self, _ctx: &LintCtx<'_>, _out: &mut Vec<Finding>) {}
}

/// The full rule set, in reporting order.
pub fn all_rules() -> Vec<Box<dyn Lint>> {
    vec![
        Box::new(panic_path::PanicPath),
        Box::new(panic_path::IndexHotPath),
        Box::new(arith::ArithOverflow),
        Box::new(metrics::MetricName),
        Box::new(metrics::SpanName),
        Box::new(metrics::MetricRegistry),
        Box::new(feature_gate::FeatureGate),
        Box::new(BadAllow),
    ]
}

/// Every valid rule id (for `bad-allow`'s unknown-rule check).
pub fn rule_ids() -> Vec<&'static str> {
    all_rules().iter().map(|r| r.id()).collect()
}

/// `bad-allow`: a `cuart-allow` comment that cannot work — missing rule
/// id, missing reason, or naming a rule that does not exist. Suppression
/// must stay auditable, so broken suppressions are findings themselves.
pub struct BadAllow;

impl Lint for BadAllow {
    fn id(&self) -> &'static str {
        "bad-allow"
    }
    fn describe(&self) -> &'static str {
        "cuart-allow comments must name a known rule and carry a reason"
    }
    fn check_file(&self, file: &SourceFile, out: &mut Vec<Finding>) {
        for &line in &file.malformed_allows {
            out.push(Finding {
                rule: self.id(),
                path: file.rel_path.clone(),
                line,
                message: "malformed cuart-allow: expected `// cuart-allow: <rule> <reason>`"
                    .to_string(),
                snippet: file.line_text(line).to_string(),
                key: String::new(),
            });
        }
        let known = rule_ids();
        for (line, rule) in file.allow_rules() {
            if !known.contains(&rule) {
                out.push(Finding {
                    rule: self.id(),
                    path: file.rel_path.clone(),
                    line,
                    message: format!("cuart-allow names unknown rule `{rule}`"),
                    snippet: file.line_text(line).to_string(),
                    key: String::new(),
                });
            }
        }
    }
}
