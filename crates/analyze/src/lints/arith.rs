//! `arith-overflow`: counter/size/offset arithmetic in accounting hot
//! spots must state its overflow intent.
//!
//! Direct follow-up to PR 8's wrapping-arithmetic bugfix sweep: the
//! debug CI lane arms overflow panics, so any bare `+=`/`-=`/`*=` on a
//! quantity-typed variable in kernel accounting, scheduler stats or
//! bench math is a latent abort. The fix is an explicit
//! `wrapping_*`/`saturating_*`/`checked_*` call — or a
//! `// cuart-allow: arith-overflow <why it cannot overflow>`.

use super::Lint;
use crate::findings::Finding;
use crate::source::SourceFile;

/// Files in scope: modeled-time/traffic accounting and bench math.
/// (Scoped by path, not crate: most library code does arithmetic on
/// domain values where the checked default is exactly right — these are
/// the accumulator-heavy files where PR 8 found real overflow bugs.)
const SCOPE: &[&str] = &[
    "crates/gpu-sim/src/exec.rs",
    "crates/gpu-sim/src/kernel.rs",
    "crates/gpu-sim/src/dram.rs",
    "crates/gpu-sim/src/cache.rs",
    "crates/gpu-sim/src/coalesce.rs",
    "crates/gpu-sim/src/pcie.rs",
    "crates/gpu-sim/src/pipeline.rs",
    "crates/gpu-sim/src/batch.rs",
    "crates/gpu-sim/src/faults.rs",
    "crates/host/src/scheduler.rs",
    "crates/host/src/sharded.rs",
    "crates/host/src/hybrid.rs",
    "crates/bench/src/series.rs",
    "crates/bench/src/regress.rs",
];

/// Name fragments that mark a quantity (counter / size / offset / time)
/// where overflow is a real failure mode.
const QUANTITY_FRAGMENTS: &[&str] = &[
    "count",
    "total",
    "bytes",
    "keys",
    "ops",
    "batches",
    "hits",
    "misses",
    "spills",
    "conflicts",
    "refills",
    "depth",
    "seq",
    "ticks",
    "sectors",
    "transactions",
    "dropped",
    "drops",
    "trips",
    "accesses",
    "offset",
    "busy",
    "_ns",
    "ns_",
    "sum",
    "shed",
    "enqueued",
    "rejected",
];

fn is_quantity_name(name: &str) -> bool {
    let lower = name.to_ascii_lowercase();
    if lower == "ns" {
        return true;
    }
    QUANTITY_FRAGMENTS.iter().any(|f| lower.contains(f))
}

pub struct ArithOverflow;

impl Lint for ArithOverflow {
    fn id(&self) -> &'static str {
        "arith-overflow"
    }
    fn describe(&self) -> &'static str {
        "quantity accounting must use explicit wrapping_/saturating_/checked_ arithmetic"
    }

    fn check_file(&self, file: &SourceFile, out: &mut Vec<Finding>) {
        if !SCOPE.contains(&file.rel_path.as_str()) {
            return;
        }
        let toks: Vec<_> = file.code_tokens().map(|(_, t)| t).collect();
        for (i, t) in toks.iter().enumerate() {
            if file.in_test_code(t.start) {
                continue;
            }
            let op = match &t.kind {
                crate::lexer::TokenKind::Punct(p @ ("+=" | "-=" | "*=")) => *p,
                _ => continue,
            };
            // The assignment target is the token chain just before the
            // operator; find its final identifier (`a.b.c += …` → `c`,
            // `arr[i] += …` → skip the bracket group back to `arr`).
            let Some(target) = assign_target(&toks, i) else {
                continue;
            };
            if !is_quantity_name(target) {
                continue;
            }
            out.push(Finding {
                rule: "arith-overflow",
                path: file.rel_path.clone(),
                line: t.line,
                message: format!(
                    "bare `{op}` on quantity `{target}`: state overflow intent with \
                     `wrapping_*`/`saturating_*`/`checked_*` (PR 8 sweep)"
                ),
                snippet: file.line_text(t.line).to_string(),
                key: String::new(),
            });
        }
    }
}

/// Final identifier of the expression ending right before token `i`.
fn assign_target<'a>(toks: &[&'a crate::lexer::Token], i: usize) -> Option<&'a str> {
    let mut j = i.checked_sub(1)?;
    // Skip a trailing index group `…[expr]`.
    if toks[j].is_punct("]") {
        let mut depth = 0i32;
        loop {
            if toks[j].is_punct("]") {
                depth += 1;
            } else if toks[j].is_punct("[") {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            j = j.checked_sub(1)?;
        }
        j = j.checked_sub(1)?;
    }
    toks[j].ident()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::{SourceFile, Tier};

    fn run(path: &str, text: &str) -> Vec<Finding> {
        let f = SourceFile::from_text(path.into(), text.into(), Tier::Lib);
        let mut out = Vec::new();
        ArithOverflow.check_file(&f, &mut out);
        out
    }

    #[test]
    fn flags_bare_compound_assign_on_quantities() {
        let text = r#"
fn account(&mut self, n: u64) {
    self.total_bytes += n;
    self.stats.batches += 1;
    self.busy[ch] += cost;
    self.label += suffix; // not a quantity name
    x += 1; // not a quantity name
}
"#;
        let out = run("crates/gpu-sim/src/dram.rs", text);
        assert_eq!(out.len(), 3, "{out:#?}");
    }

    #[test]
    fn explicit_intent_and_out_of_scope_files_pass() {
        let text = r#"
fn account(&mut self, n: u64) {
    self.total_bytes = self.total_bytes.saturating_add(n);
    self.seq = self.seq.wrapping_add(1);
}
"#;
        assert!(run("crates/gpu-sim/src/dram.rs", text).is_empty());
        let bare = "fn f(&mut self) { self.total_bytes += 1; }";
        assert!(run("crates/core/src/api.rs", bare).is_empty());
    }

    #[test]
    fn test_mod_is_exempt() {
        let text = r#"
#[cfg(test)]
mod tests {
    #[test]
    fn t() { let mut total_ns = 0u64; total_ns += 5; }
}
"#;
        assert!(run("crates/host/src/scheduler.rs", text).is_empty());
    }
}
