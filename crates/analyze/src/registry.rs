//! The canonical metric/span-name catalog.
//!
//! This module is the **single source of truth** for every `cuart.*` /
//! `grt.*` series name and every span name in the workspace. From it the
//! analyzer generates:
//!
//! * `crates/telemetry/src/names.rs` — the registry module all call
//!   sites must reference (`cuart-analyze --emit-registry`), and
//! * the DESIGN.md §6 metric table between the
//!   `<!-- analyze:metric-table -->` markers
//!   (`cuart-analyze --emit-design-table`).
//!
//! The `metric-name` lint verifies both artifacts are in sync with this
//! catalog, so code, registry and docs cannot drift independently.

/// What a series is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Kind {
    Counter,
    Gauge,
    Histogram,
    /// A name prefix for a dynamically-keyed family
    /// (`cuart.sched.shard.<i>.*`, `cuart.trace.critical.<stage>`).
    Prefix,
}

impl Kind {
    pub fn label(self) -> &'static str {
        match self {
            Kind::Counter => "counter",
            Kind::Gauge => "gauge",
            Kind::Histogram => "histogram",
            Kind::Prefix => "prefix family",
        }
    }
}

/// One registered series name.
pub struct MetricDef {
    /// Const identifier emitted into `names.rs`.
    pub konst: &'static str,
    /// The wire name (or prefix, for `Kind::Prefix`).
    pub name: &'static str,
    pub kind: Kind,
    /// Doc comment for the generated const.
    pub doc: &'static str,
    /// Which DESIGN.md table row this metric belongs to.
    pub group: &'static str,
}

/// One DESIGN.md table row: a group of related series and their
/// paper hook.
pub struct GroupDef {
    pub id: &'static str,
    /// Override for the "Metric" cell (used when enumerating members
    /// would be noise, e.g. `cuart.build.records.<class>`).
    pub table_name: Option<&'static str>,
    /// The "Paper hook" cell.
    pub hook: &'static str,
}

/// One registered span name.
pub struct SpanDef {
    pub konst: &'static str,
    pub name: &'static str,
    pub doc: &'static str,
}

macro_rules! metric {
    ($konst:ident, $name:literal, $kind:ident, $group:literal, $doc:literal) => {
        MetricDef {
            konst: stringify!($konst),
            name: $name,
            kind: Kind::$kind,
            doc: $doc,
            group: $group,
        }
    };
}

#[rustfmt::skip]
pub const METRICS: &[MetricDef] = &[
    metric!(LOOKUP_BATCHES, "cuart.lookup.batches", Counter, "lookup",
        "Lookup batches served on the device path."),
    metric!(LOOKUP_KEYS, "cuart.lookup.keys", Counter, "lookup",
        "Keys submitted to device lookups."),
    metric!(LOOKUP_KERNEL_NS, "cuart.lookup.kernel_ns", Histogram, "lookup",
        "Histogram: modeled kernel ns per lookup batch."),
    metric!(LOOKUP_HOST_SPILLS, "cuart.lookup.host_spills", Counter, "lookup-spills",
        "Lookup keys resolved on the host (HOST_SIGNAL / overflow)."),
    metric!(UPDATE_BATCHES, "cuart.update.batches", Counter, "update",
        "Update batches served on the device path."),
    metric!(UPDATE_KEYS, "cuart.update.keys", Counter, "update",
        "Keys submitted to device updates."),
    metric!(UPDATE_KERNEL_NS, "cuart.update.kernel_ns", Histogram, "update",
        "Histogram: modeled kernel ns per update batch."),
    metric!(CLAIM_CONFLICTS, "cuart.update.claim_conflicts", Counter, "update",
        "Update/insert slot-claim conflicts (atomic CAS retries)."),
    metric!(INSERT_BATCHES, "cuart.insert.batches", Counter, "insert",
        "Insert batches served on the device path."),
    metric!(INSERT_KEYS, "cuart.insert.keys", Counter, "insert",
        "Keys submitted to device inserts."),
    metric!(INSERT_HOST_SPILLS, "cuart.insert.host_spills", Counter, "insert",
        "Inserts spilled to the host overflow table."),
    metric!(FREELIST_REFILLS, "cuart.insert.freelist_refills", Counter, "insert",
        "Free-list refills triggered by inserts."),
    metric!(INSERT_KERNEL_NS, "cuart.insert.kernel_ns", Histogram, "insert",
        "Histogram: modeled kernel ns per insert batch."),
    metric!(RANGE_BATCHES, "cuart.range.batches", Counter, "range",
        "Range-query batches served through the session."),
    metric!(RANGE_KEYS, "cuart.range.keys", Counter, "range",
        "Inclusive range queries submitted (one per [lo, hi] pair)."),
    metric!(RANGE_ROWS, "cuart.range.rows", Counter, "range",
        "Rows materialized across all range queries."),
    metric!(RANGE_KERNEL_NS, "cuart.range.kernel_ns", Histogram, "range",
        "Histogram: modeled span-kernel ns per range batch."),
    metric!(L2_HITS, "cuart.kernel.l2_hits", Counter, "l2",
        "L2 hits across all kernels."),
    metric!(L2_MISSES, "cuart.kernel.l2_misses", Counter, "l2",
        "L2 misses across all kernels."),
    metric!(L2_HIT_RATE, "cuart.kernel.l2_hit_rate", Gauge, "l2",
        "Gauge: L2 hit rate of the most recent kernel."),
    metric!(DRAM_TRANSACTIONS, "cuart.kernel.dram_transactions", Counter, "dram",
        "DRAM sector transactions across all kernels."),
    metric!(DRAM_BYTES, "cuart.kernel.dram_bytes", Counter, "dram",
        "DRAM bytes moved across all kernels."),
    metric!(DRAM_IMBALANCE, "cuart.kernel.dram_imbalance", Gauge, "dram",
        "Gauge: DRAM channel imbalance of the most recent kernel."),
    metric!(COALESCED_ACCESSES, "cuart.kernel.coalesced_accesses", Counter, "coalescing",
        "Coalesced memory requests across all kernels."),
    metric!(RAW_ACCESSES, "cuart.kernel.raw_accesses", Counter, "coalescing",
        "Raw per-lane memory requests across all kernels."),
    metric!(DRAM_TX_PER_BATCH, "cuart.kernel.dram_tx_per_batch", Histogram, "dram-dist",
        "Histogram: DRAM transactions per batch."),
    metric!(DEVICE_BYTES, "cuart.build.device_bytes", Gauge, "build",
        "Gauge: device-resident bytes of the built index."),
    metric!(BUILD_NODES, "cuart.build.nodes", Gauge, "build",
        "Gauge: number of inner nodes in the built index."),
    metric!(BUILD_LEAVES, "cuart.build.leaves", Gauge, "build",
        "Gauge: number of leaves in the built index."),
    metric!(BUILD_HOST_ENTRIES, "cuart.build.host_entries", Gauge, "build",
        "Gauge: keys kept in the host-side overflow store."),
    metric!(BUILD_RECORDS_N4, "cuart.build.records.n4", Gauge, "build-records",
        "Gauge: mapped Node4 records in the device arena."),
    metric!(BUILD_RECORDS_N16, "cuart.build.records.n16", Gauge, "build-records",
        "Gauge: mapped Node16 records in the device arena."),
    metric!(BUILD_RECORDS_N48, "cuart.build.records.n48", Gauge, "build-records",
        "Gauge: mapped Node48 records in the device arena."),
    metric!(BUILD_RECORDS_N256, "cuart.build.records.n256", Gauge, "build-records",
        "Gauge: mapped Node256 records in the device arena."),
    metric!(BUILD_RECORDS_N2L, "cuart.build.records.n2l", Gauge, "build-records",
        "Gauge: mapped node-to-leaf records in the device arena."),
    metric!(BUILD_RECORDS_LEAF8, "cuart.build.records.leaf8", Gauge, "build-records",
        "Gauge: mapped leaf8 records in the device arena."),
    metric!(BUILD_RECORDS_LEAF16, "cuart.build.records.leaf16", Gauge, "build-records",
        "Gauge: mapped leaf16 records in the device arena."),
    metric!(BUILD_RECORDS_LEAF32, "cuart.build.records.leaf32", Gauge, "build-records",
        "Gauge: mapped leaf32 records in the device arena."),
    metric!(HYBRID_GPU_BATCHES, "cuart.hybrid.gpu_batches", Counter, "hybrid",
        "Hybrid batches routed to the GPU."),
    metric!(HYBRID_CPU_KEYS, "cuart.hybrid.cpu_keys", Counter, "hybrid",
        "Hybrid keys routed to the CPU (long-key / HOST_SIGNAL path)."),
    metric!(HYBRID_GPU_KEYS, "cuart.hybrid.gpu_keys", Counter, "hybrid",
        "Hybrid keys routed to the GPU."),
    metric!(HYBRID_CPU_FRACTION, "cuart.hybrid.cpu_fraction", Gauge, "hybrid",
        "Gauge: fraction of keys routed to the CPU in the last hybrid run."),
    metric!(FAULTS_INJECTED, "cuart.faults.injected", Counter, "faults",
        "Device faults injected (or observed) across the session."),
    metric!(FAULT_RETRIES, "cuart.faults.retries", Counter, "faults",
        "Batch retries after a device fault."),
    metric!(FAULT_BACKOFF_NS, "cuart.faults.backoff_ns", Histogram, "faults",
        "Histogram: modeled retry backoff ns per attempt."),
    metric!(FAULT_DEGRADATIONS, "cuart.faults.degradations", Counter, "faults",
        "Times the session degraded to the CPU path."),
    metric!(FAULT_RECOVERIES, "cuart.faults.recoveries", Counter, "faults",
        "Times a degraded session recovered its device image."),
    metric!(FAULT_CPU_FALLBACK_BATCHES, "cuart.faults.cpu_fallback_batches", Counter, "faults",
        "Batches served entirely by the CPU fallback while degraded."),
    metric!(FAULT_CPU_FALLBACK_KEYS, "cuart.faults.cpu_fallback_keys", Counter, "faults",
        "Keys served by the CPU fallback while degraded."),
    metric!(FAULT_DEGRADED, "cuart.faults.degraded", Gauge, "faults",
        "Gauge: 1 while the session is degraded, 0 otherwise."),
    metric!(GRT_LOOKUP_BATCHES, "grt.lookup.batches", Counter, "grt",
        "GRT lookup batches."),
    metric!(GRT_LOOKUP_KEYS, "grt.lookup.keys", Counter, "grt",
        "GRT keys submitted to lookups."),
    metric!(GRT_LOOKUP_KERNEL_NS, "grt.lookup.kernel_ns", Histogram, "grt",
        "Histogram: modeled kernel ns per GRT lookup batch."),
    metric!(GRT_UPDATE_BATCHES, "grt.update.batches", Counter, "grt",
        "GRT update batches."),
    metric!(GRT_DEVICE_BYTES, "grt.build.device_bytes", Gauge, "grt",
        "Gauge: device-resident bytes of the built GRT."),
    metric!(SCHED_ENQUEUED, "cuart.sched.enqueued", Counter, "sched",
        "Operations accepted by the batch scheduler's submission queue."),
    metric!(SCHED_BATCHES, "cuart.sched.batches", Counter, "sched",
        "Batches the scheduler dispatched to the session."),
    metric!(SCHED_SORTED_BATCHES, "cuart.sched.sorted_batches", Counter, "sched",
        "Batches packed in sorted key order (the locality path)."),
    metric!(SCHED_SIZE_FLUSHES, "cuart.sched.size_flushes", Counter, "sched-flush",
        "Batches flushed because the size target was reached."),
    metric!(SCHED_DEADLINE_FLUSHES, "cuart.sched.deadline_flushes", Counter, "sched-flush",
        "Batches flushed because the oldest queued op hit its deadline."),
    metric!(SCHED_QUEUE_DEPTH, "cuart.sched.queue_depth", Gauge, "sched-depth",
        "Gauge: ops waiting in the scheduler queue at the last flush."),
    metric!(SCHED_BATCH_FILL, "cuart.sched.batch_fill", Histogram, "sched-lat",
        "Histogram: keys per dispatched scheduler batch."),
    metric!(SCHED_QUEUE_LATENCY_NS, "cuart.sched.queue_latency_ns", Histogram, "sched-lat",
        "Histogram: per-batch queueing latency (enqueue of the oldest op to\ndispatch), nanoseconds."),
    metric!(SCHED_SHED, "cuart.sched.shed", Counter, "sched-overload",
        "Ops shed at coalesce time because their deadline had already passed."),
    metric!(SCHED_REJECTED, "cuart.sched.rejected", Counter, "sched-overload",
        "Ops refused at admission (queue full under the `Reject` policy)."),
    metric!(SCHED_BREAKER_STATE, "cuart.sched.breaker_state", Gauge, "sched-breaker-state",
        "Gauge: breaker state (0 = Closed, 1 = HalfOpen, 2 = Open)."),
    metric!(SCHED_BREAKER_TRIPS, "cuart.sched.breaker_trips", Counter, "sched-breaker",
        "Circuit-breaker trips (`Closed`/`HalfOpen` \u{2192} `Open`)."),
    metric!(SCHED_PROBE_BATCHES, "cuart.sched.probe_batches", Counter, "sched-breaker",
        "Half-open probe batches dispatched to the device while recovering."),
    metric!(SCHED_ROUTED_REQUESTS, "cuart.sched.routed_requests", Counter, "sched-route",
        "Requests routed through a sharded scheduler's split/merge router."),
    metric!(SCHED_ROUTED_KEYS, "cuart.sched.routed_keys", Counter, "sched-route",
        "Keys routed through a sharded scheduler's split/merge router."),
    metric!(SCHED_SHARD_PREFIX, "cuart.sched.shard.", Prefix, "sched-shard",
        "Prefix of the per-shard scheduler twins: a scheduler running as\nshard `i` of a `ShardedScheduler` mirrors each of its counters and\ngauges to `cuart.sched.shard.<i>.<suffix>`, so per-shard counters\nsum to the global `cuart.sched.*` totals by construction."),
    metric!(NET_CONNECTIONS, "cuart.net.connections", Gauge, "net",
        "Gauge: currently open client connections."),
    metric!(NET_ACCEPTED, "cuart.net.accepted", Counter, "net",
        "Client connections accepted since the server started."),
    metric!(NET_DRAINED, "cuart.net.drained", Gauge, "net",
        "Gauge: 1 once the server finished a drain-safe shutdown (stopped\naccepting, flushed in-flight requests, joined the scheduler)."),
    metric!(NET_FRAMES_IN, "cuart.net.frames_in", Counter, "net-frames",
        "Request frames decoded off client connections."),
    metric!(NET_FRAMES_OUT, "cuart.net.frames_out", Counter, "net-frames",
        "Response frames written to client connections."),
    metric!(NET_BYTES_IN, "cuart.net.bytes_in", Counter, "net-frames",
        "Payload bytes read off client connections."),
    metric!(NET_BYTES_OUT, "cuart.net.bytes_out", Counter, "net-frames",
        "Payload bytes written to client connections."),
    metric!(NET_DECODE_ERRORS, "cuart.net.decode_errors", Counter, "net-frames",
        "Frames rejected at decode time (bad magic/version/CRC/truncation)."),
    metric!(NET_WINDOW_STALLS, "cuart.net.window_stalls", Counter, "net-backpressure",
        "Times a connection's reader blocked on its full in-flight window\n(network backpressure composing with queue admission)."),
    metric!(NET_ERROR_FRAMES, "cuart.net.error_frames", Counter, "net-backpressure",
        "Typed error frames returned to clients (admission rejects, sheds,\nbreaker-open refusals, decode errors)."),
    metric!(NET_REQUEST_NS, "cuart.net.request_ns", Histogram, "net-lat",
        "Histogram: server-side wall ns per request (decode to response\nwrite handoff)."),
    metric!(EVENTS_DROPPED, "cuart.telemetry.events_dropped", Counter, "telemetry-drops",
        "Events evicted from the bounded batch-event ring (overflow is\nsurfaced, not silent)."),
    metric!(SPANS_DROPPED, "cuart.telemetry.spans_dropped", Counter, "telemetry-drops",
        "Spans evicted from the bounded span ring."),
    metric!(TRACE_CRITICAL_PREFIX, "cuart.trace.critical.", Prefix, "trace-critical",
        "Prefix of the critical-path counters: committing a span tree bumps\n`cuart.trace.critical.<stage>` for its dominant leaf stage."),
    metric!(TRACE_CRITICAL_SHARE, "cuart.trace.critical_share", Gauge, "trace-critical",
        "Gauge: dominant stage's share of leaf time in the last committed\nspan tree."),
];

/// DESIGN.md §6 table rows, in table order.
#[rustfmt::skip]
pub const GROUPS: &[GroupDef] = &[
    GroupDef { id: "lookup", table_name: None,
        hook: "§4.2 lookup figures (8–12): batch counts and per-batch kernel-time distribution behind every MOps/s point." },
    GroupDef { id: "l2", table_name: None,
        hook: "§3.1/§4.2 cache-residency argument: why throughput droops once the tree overflows L2 (Fig. 10's knee)." },
    GroupDef { id: "dram", table_name: None,
        hook: "DRAM channel model (§2): transaction counts behind GRT-vs-CuART gap; imbalance = max/mean channel busy." },
    GroupDef { id: "coalescing", table_name: None,
        hook: "§3.2 layout claim: aligned per-type records coalesce; ratio quantifies it (GRT's header-then-body pattern shows a worse ratio)." },
    GroupDef { id: "dram-dist", table_name: None,
        hook: "per-batch distribution of DRAM traffic — the droop in Fig. 15 is visible as a fattening tail." },
    GroupDef { id: "lookup-spills", table_name: None,
        hook: "§3.2.3 long-key routing: keys the device could not serve (HOST_SIGNAL / CPU route). Feeds Fig. 13." },
    GroupDef { id: "update", table_name: None,
        hook: "§3.4 two-stage update kernel; claim conflicts are the hash-table collisions that drive Fig. 15's droop." },
    GroupDef { id: "insert", table_name: None,
        hook: "§5.1 device-side inserts: on-device attach vs host-overflow spill ratio; free-list churn from delete/insert cycles (§3.3)." },
    GroupDef { id: "build", table_name: None,
        hook: "§3.2 mapping: built-image size, node/leaf totals and host-side overflow population." },
    GroupDef { id: "build-records", table_name: Some("`cuart.build.records.<class>`"),
        hook: "§3.2 mapping: arena population per node/leaf class (`n4`/`n16`/`n48`/`n256`/`n2l`/`leaf8`/`leaf16`/`leaf32` — density effects of §4.4)." },
    GroupDef { id: "range", table_name: None,
        hook: "§3.2.1 range queries: span-kernel batches over the ordered leaf arenas, queries served and rows returned (result = per-class `[start, end)` index pairs, materialized host-side)." },
    GroupDef { id: "hybrid", table_name: None,
        hook: "§3.2.3 hybrid split, Figs. 13/14: the CPU-leg share that collapses overall throughput." },
    GroupDef { id: "faults", table_name: None,
        hook: "fault model (§7): injected faults, retry/backoff volume, degrade/recover transitions and the CPU-fallback share while degraded." },
    GroupDef { id: "sched", table_name: None,
        hook: "serving layer (extension): keys accepted from producers, device batches dispatched, and how many took the sorted §3.1-locality path. `enqueued == keys_dispatched` at shutdown is the no-loss invariant." },
    GroupDef { id: "sched-flush", table_name: None,
        hook: "why each batch flushed: the size target (good fill, amortised launch) vs the latency deadline (underfilled — the fill/latency trade fig19 sweeps)." },
    GroupDef { id: "sched-depth", table_name: None,
        hook: "pending keys at flush time — backpressure signal from producers outrunning the executor." },
    GroupDef { id: "sched-lat", table_name: None,
        hook: "per-batch fill distribution (launch amortisation, §4.1 batching) and per-request queueing delay — the latency cost of waiting for coalescing." },
    GroupDef { id: "sched-overload", table_name: None,
        hook: "overload protection (extension): ops answered `DeadlineExceeded` at coalesce time, and ops refused at admission (`QueueFull` fail-fast and `AdmissionTimeout` both count into `.rejected`) — load the scheduler declined rather than served late." },
    GroupDef { id: "sched-breaker-state", table_name: None,
        hook: "circuit-breaker position: 0 = closed, 1 = half-open, 2 = open (see §7.1)." },
    GroupDef { id: "sched-breaker", table_name: None,
        hook: "trips into `Open` and half-open probe batches dispatched — the fault-episode timeline of a serving run, matching the `breaker_*` trace events." },
    GroupDef { id: "sched-route", table_name: None,
        hook: "scale-out router (extension): client calls and point ops that went through the split→dispatch→merge path (§5.1 table)." },
    GroupDef { id: "sched-shard", table_name: Some("`cuart.sched.shard.<i>.*`"),
        hook: "per-shard twins of every `cuart.sched.*` counter and gauge above; shard `i`'s scheduler dual-writes both, so the twins sum to the global series exactly (asserted in `tests/scheduler_sharded.rs`). Histograms and spans stay global-only to bound cardinality." },
    GroupDef { id: "net", table_name: None,
        hook: "network front-end (extension): connection lifecycle and the drain-safe shutdown marker CI asserts on — the request coalescing front §3.4's batching pays off through." },
    GroupDef { id: "net-frames", table_name: None,
        hook: "wire traffic: frames/bytes in and out of the length-prefixed binary protocol, and frames rejected at decode (bad magic/version/CRC) — the server answers an error frame and survives." },
    GroupDef { id: "net-backpressure", table_name: None,
        hook: "backpressure composition: reader stalls on the bounded per-connection in-flight window (TCP backpressure) and typed error frames surfacing admission rejects/sheds/breaker refusals to clients." },
    GroupDef { id: "net-lat", table_name: None,
        hook: "server-side request latency distribution — the network-path twin of `cuart.sched.queue_latency_ns`, separating wire/queueing cost from modeled kernel time." },
    GroupDef { id: "grt", table_name: None,
        hook: "GRT baseline (§4), same event schema — side-by-side comparison in one registry." },
    GroupDef { id: "telemetry-drops", table_name: None,
        hook: "ring-buffer overflow accounting for the event and span stores — nonzero means the trace is a suffix, not the whole run." },
    GroupDef { id: "trace-critical", table_name: Some("`cuart.trace.critical.<stage>`, `cuart.trace.critical_share`"),
        hook: "critical-path accounting (§6.1): dominant leaf stage per committed span tree, and its share of leaf time — \"what bounds this workload\" as a counter query." },
];

macro_rules! span {
    ($konst:ident, $name:literal, $doc:literal) => {
        SpanDef {
            konst: stringify!($konst),
            name: $name,
            doc: $doc,
        }
    };
}

#[rustfmt::skip]
pub const SPANS: &[SpanDef] = &[
    span!(BATCH_LOOKUP, "batch.lookup",
        "Root: one CuART session lookup batch (§3.2)."),
    span!(BATCH_UPDATE, "batch.update",
        "Root: one CuART session update/delete batch (§3.4)."),
    span!(BATCH_INSERT, "batch.insert",
        "Root: one CuART session insert batch (§5.1)."),
    span!(BATCH_RANGE, "batch.range",
        "Root: one CuART session range batch (§3.2.1 span kernel)."),
    span!(SCHED_BATCH_LOOKUP, "sched.batch.lookup",
        "Root: one serving-layer lookup batch (coalesce→sort→dispatch→scatter)."),
    span!(SCHED_BATCH_UPDATE, "sched.batch.update",
        "Root: one serving-layer update batch."),
    span!(SCHED_BATCH_INSERT, "sched.batch.insert",
        "Root: one serving-layer insert batch."),
    span!(SCHED_BATCH_RANGE, "sched.batch.range",
        "Root: one serving-layer range batch (coalesce\u{2192}dispatch, no sort\nor scatter \u{2014} ranges keep arrival order)."),
    span!(NET_REQUEST, "net.request",
        "Standalone leaf: one network request served (decode\u{2192}backend\u{2192}\nresponse write), wall-clock, attrs opcode/bytes."),
    span!(SCHED_SHED, "sched.shed",
        "Standalone leaf: coalesce-time shedding of deadline-expired ops."),
    span!(SCHED_ROUTE, "sched.route",
        "Standalone leaf: one routed fleet call (split\u{2192}dispatch\u{2192}merge)."),
    span!(HYBRID_ROUTE, "hybrid.route",
        "Root: §3.2.3 hybrid split; spans the slower of the gpu/cpu legs."),
    span!(PIPELINE, "pipeline",
        "Root: one S-stream software-pipelined run (Figs. 8/9)."),
    span!(PIPELINE_BATCH, "pipeline.batch",
        "Node: one batch inside a pipelined run, children at scheduled offsets."),
    span!(KERNEL, "kernel",
        "Node: a device kernel, decomposed into `dram` + `exec`."),
    span!(DRAM, "dram",
        "Leaf: the kernel share covered by the DRAM bandwidth bound."),
    span!(EXEC, "exec",
        "Leaf: the kernel share left after the DRAM bound (latency/compute)."),
    span!(H2D, "h2d",
        "Leaf: PCIe upload of the key batch (bytes attached)."),
    span!(D2H, "d2h",
        "Leaf: PCIe download of results (bytes attached)."),
    span!(LAUNCH, "launch",
        "Leaf: kernel-launch overhead (§4.1's batching motivation)."),
    span!(COALESCE, "coalesce",
        "Leaf: request coalescing into a device batch (serving layer)."),
    span!(SORT, "sort",
        "Leaf: §3.2 sorted batches — ordering queries for §3.1 locality."),
    span!(SCATTER, "scatter",
        "Leaf: result scatter back to producers in arrival order."),
    span!(PREPARE, "prepare",
        "Leaf: host-side batch preparation stage of the pipeline."),
    span!(POST, "post",
        "Leaf: host-side post-processing stage of the pipeline."),
    span!(GPU, "gpu",
        "Leaf: the GPU leg of a hybrid batch (starts at t=0)."),
    span!(CPU, "cpu",
        "Leaf: the CPU leg of a hybrid batch (starts at t=0, overlaps `gpu`)."),
];

/// Span-name *prefixes* consumers may match on (`starts_with`).
pub const SPAN_PREFIXES: &[(&str, &str, &str)] = &[
    (
        "BATCH_PREFIX",
        "batch.",
        "Prefix of the session batch roots (`batch.lookup/update/insert`).",
    ),
    (
        "SCHED_BATCH_PREFIX",
        "sched.batch.",
        "Prefix of the serving-layer batch roots.",
    ),
];

/// Generate the full contents of `crates/telemetry/src/names.rs`.
pub fn generate_names_rs() -> String {
    let mut out = String::new();
    out.push_str(
        "//! Canonical metric and span names shared by producers and consumers,\n\
         //! so the CLI, the bench harness and the tests never drift on spelling.\n\
         //!\n\
         //! @generated by `cuart-analyze --emit-registry` from\n\
         //! `crates/analyze/src/registry.rs` — do not edit by hand; edit the\n\
         //! catalog and regenerate (CI fails on drift via the `metric-name`\n\
         //! lint).\n\n",
    );
    for m in METRICS {
        push_doc(&mut out, "", m.doc);
        out.push_str(&format!("pub const {}: &str = \"{}\";\n", m.konst, m.name));
    }
    out.push_str(
        "\n/// Common prefix of every scheduler series above.\n\
         pub const SCHED_PREFIX: &str = \"cuart.sched.\";\n\n\
         /// Per-shard twin of a global `cuart.sched.*` series name:\n\
         /// `sched_shard(3, SCHED_SHED)` \u{2192} `\"cuart.sched.shard.3.shed\"`.\n\
         pub fn sched_shard(shard: usize, global: &str) -> String {\n\
         \x20   let suffix = global.strip_prefix(SCHED_PREFIX).unwrap_or(global);\n\
         \x20   format!(\"{SCHED_SHARD_PREFIX}{shard}.{suffix}\")\n\
         }\n\n",
    );
    // Exact-name table and the dynamic-family prefixes, for registry checks.
    out.push_str("/// Every exact registered series name (prefix families excluded).\n");
    out.push_str("pub const ALL_METRICS: &[&str] = &[\n");
    for m in METRICS.iter().filter(|m| m.kind != Kind::Prefix) {
        out.push_str(&format!("    {},\n", m.konst));
    }
    out.push_str("];\n\n");
    out.push_str("/// Prefixes of dynamically-keyed series families.\n");
    let prefixes: Vec<&str> = METRICS
        .iter()
        .filter(|m| m.kind == Kind::Prefix)
        .map(|m| m.konst)
        .collect();
    out.push_str(&format!(
        "pub const METRIC_PREFIXES: &[&str] = &[{}];\n\n",
        prefixes.join(", ")
    ));
    out.push_str(
        "/// Is `name` a registered series — an exact name, or a member of a\n\
         /// registered dynamic family (non-empty remainder after the prefix)?\n\
         pub fn is_registered(name: &str) -> bool {\n\
         \x20   ALL_METRICS.contains(&name)\n\
         \x20       || METRIC_PREFIXES\n\
         \x20           .iter()\n\
         \x20           .any(|p| name.len() > p.len() && name.starts_with(p))\n\
         }\n\n",
    );
    // Span names.
    out.push_str(
        "/// Canonical span names (see DESIGN.md §6.1 for the paper mapping).\n\
         pub mod spans {\n",
    );
    for s in SPANS {
        push_doc(&mut out, "    ", s.doc);
        out.push_str(&format!(
            "    pub const {}: &str = \"{}\";\n",
            s.konst, s.name
        ));
    }
    for (konst, name, doc) in SPAN_PREFIXES {
        push_doc(&mut out, "    ", doc);
        out.push_str(&format!("    pub const {}: &str = \"{}\";\n", konst, name));
    }
    out.push_str("\n    /// Every registered span name.\n");
    out.push_str("    pub const ALL_SPANS: &[&str] = &[\n");
    for s in SPANS {
        out.push_str(&format!("        {},\n", s.konst));
    }
    out.push_str("    ];\n}\n");
    out
}

/// Emit a (possibly multi-line) doc comment at the given indent.
fn push_doc(out: &mut String, indent: &str, doc: &str) {
    for line in doc.lines() {
        out.push_str(&format!("{indent}/// {line}\n"));
    }
}

/// Abbreviate `name` against `first` the way the DESIGN table does:
/// `cuart.lookup.keys` after `cuart.lookup.batches` renders as `.keys`.
fn abbreviate(first: &str, name: &str) -> String {
    if let Some(dot) = first.rfind('.') {
        let prefix = &first[..dot + 1];
        if let Some(rest) = name.strip_prefix(prefix) {
            return format!(".{rest}");
        }
    }
    name.to_string()
}

/// Generate the DESIGN.md §6 metric table body (header row included,
/// markers excluded).
pub fn generate_metric_table() -> String {
    let mut out = String::from("| Metric | Kind | Paper hook |\n|---|---|---|\n");
    for g in GROUPS {
        let members: Vec<&MetricDef> = METRICS.iter().filter(|m| m.group == g.id).collect();
        assert!(
            !members.is_empty(),
            "registry group `{}` has no member metrics",
            g.id
        );
        let name_cell = match g.table_name {
            Some(n) => n.to_string(),
            None => {
                let first = members[0].name;
                members
                    .iter()
                    .enumerate()
                    .map(|(i, m)| {
                        if i == 0 {
                            format!("`{}`", m.name)
                        } else {
                            format!("`{}`", abbreviate(first, m.name))
                        }
                    })
                    .collect::<Vec<_>>()
                    .join(" / ")
            }
        };
        let mut kinds: Vec<&str> = Vec::new();
        for m in &members {
            let l = m.kind.label();
            if !kinds.contains(&l) {
                kinds.push(l);
            }
        }
        let plural = members.len() > 1;
        let kind_cell = kinds
            .iter()
            .map(|k| {
                if plural && (*k == "counter" || *k == "gauge" || *k == "histogram") {
                    format!("{k}s")
                } else {
                    k.to_string()
                }
            })
            .collect::<Vec<_>>()
            .join(" / ");
        out.push_str(&format!("| {} | {} | {} |\n", name_cell, kind_cell, g.hook));
    }
    out.push_str("| event ring (`BatchEvent`) | trace | one structured record per batch (build/lookup/update/insert/hybrid_route); bounded, oldest dropped, drop count exported. |\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    #[test]
    fn names_and_consts_are_unique_and_well_formed() {
        let mut names = BTreeSet::new();
        let mut consts = BTreeSet::new();
        for m in METRICS {
            assert!(names.insert(m.name), "duplicate metric name {}", m.name);
            assert!(consts.insert(m.konst), "duplicate const {}", m.konst);
            assert!(
                m.name.starts_with("cuart.") || m.name.starts_with("grt."),
                "{} lacks a namespace",
                m.name
            );
            if m.kind == Kind::Prefix {
                assert!(m.name.ends_with('.'), "prefix {} must end with '.'", m.name);
            } else {
                assert!(!m.name.ends_with('.'), "{} ends with '.'", m.name);
            }
        }
        let mut spans = BTreeSet::new();
        for s in SPANS {
            assert!(spans.insert(s.name), "duplicate span name {}", s.name);
        }
    }

    #[test]
    fn every_group_has_members_and_every_metric_a_group() {
        let group_ids: BTreeSet<&str> = GROUPS.iter().map(|g| g.id).collect();
        for m in METRICS {
            assert!(
                group_ids.contains(m.group),
                "metric {} references unknown group {}",
                m.name,
                m.group
            );
        }
        // generate_metric_table asserts the converse (no empty groups).
        let table = generate_metric_table();
        assert!(table.contains("cuart.lookup.batches"));
    }

    #[test]
    fn generated_registry_parses_as_it_should() {
        let src = generate_names_rs();
        assert!(src.contains("pub const LOOKUP_BATCHES"));
        assert!(src.contains("pub mod spans"));
        assert!(src.contains("@generated"));
        // Quick structural sanity: balanced braces.
        let open = src.matches('{').count();
        let close = src.matches('}').count();
        assert_eq!(open, close);
    }
}
