//! Offline shim for the `criterion` crate.
//!
//! Provides just enough of criterion 0.5's surface for this workspace's
//! bench targets to compile and run: [`Criterion`], benchmark groups,
//! [`BenchmarkId`], [`Throughput`], [`black_box`] and the
//! `criterion_group!` / `criterion_main!` macros. Each benchmark body is
//! executed a small fixed number of times and a coarse mean is printed;
//! no statistical analysis is performed.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::Instant;

pub use std::hint::black_box;

/// How many timed iterations the shim runs per benchmark.
const TIMED_ITERS: u32 = 8;

/// Units the measured elements are reported in (accepted, not analysed).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Identifier for one benchmark inside a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter` form.
    pub fn new(function_name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{function_name}/{parameter}"),
        }
    }

    /// Parameter-only form.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Per-benchmark timing harness handed to the closure.
pub struct Bencher {
    mean_ns: f64,
}

impl Bencher {
    /// Time `routine`, keeping its output alive via [`black_box`].
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // One warm-up call, then a fixed number of timed calls.
        black_box(routine());
        let start = Instant::now();
        for _ in 0..TIMED_ITERS {
            black_box(routine());
        }
        self.mean_ns = start.elapsed().as_nanos() as f64 / f64::from(TIMED_ITERS);
    }
}

fn run_one<F: FnMut(&mut Bencher)>(label: &str, mut f: F) {
    let mut b = Bencher { mean_ns: 0.0 };
    f(&mut b);
    println!("bench {label:<48} {:>12.1} ns/iter (shim mean)", b.mean_ns);
}

/// Group of related benchmarks (subset of `criterion::BenchmarkGroup`).
pub struct BenchmarkGroup {
    name: String,
}

impl BenchmarkGroup {
    /// Record the declared throughput (ignored by the shim).
    pub fn throughput(&mut self, _t: Throughput) {}

    /// Run one benchmark with an input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.id);
        run_one(&label, |b| f(b, input));
        self
    }

    /// Run one benchmark without an input value.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkIdOrStr>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into().0);
        run_one(&label, &mut f);
        self
    }

    /// Finish the group (no-op in the shim).
    pub fn finish(self) {}
}

/// Accepts either a `BenchmarkId` or a string for `bench_function`.
pub struct BenchmarkIdOrStr(String);

impl From<BenchmarkId> for BenchmarkIdOrStr {
    fn from(id: BenchmarkId) -> Self {
        BenchmarkIdOrStr(id.id)
    }
}

impl From<&str> for BenchmarkIdOrStr {
    fn from(s: &str) -> Self {
        BenchmarkIdOrStr(s.to_string())
    }
}

impl From<String> for BenchmarkIdOrStr {
    fn from(s: String) -> Self {
        BenchmarkIdOrStr(s)
    }
}

/// Top-level benchmark driver (subset of `criterion::Criterion`).
#[derive(Default)]
pub struct Criterion {
    _sample_size: usize,
}

impl Criterion {
    /// Accepted for API compatibility; the shim runs a fixed count.
    pub fn sample_size(mut self, n: usize) -> Self {
        self._sample_size = n;
        self
    }

    /// Start a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup {
        BenchmarkGroup { name: name.into() }
    }

    /// Run one stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkIdOrStr>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&id.into().0, &mut f);
        self
    }
}

/// Declares a group runner function (subset of `criterion_group!`).
#[macro_export]
macro_rules! criterion_group {
    (
        name = $name:ident;
        config = $config:expr;
        targets = $( $target:path ),+ $(,)?
    ) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ( $name:ident, $( $target:path ),+ $(,)? ) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $( $target ),+
        }
    };
}

/// Declares `main` running the listed groups (subset of `criterion_main!`).
#[macro_export]
macro_rules! criterion_main {
    ( $( $group:path ),+ $(,)? ) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("shim");
        group.throughput(Throughput::Elements(4));
        group.bench_with_input(BenchmarkId::new("sum", 4), &[1u64, 2, 3, 4][..], |b, xs| {
            b.iter(|| xs.iter().sum::<u64>())
        });
        group.finish();
        c.bench_function("shim/standalone", |b| b.iter(|| black_box(2 + 2)));
    }

    criterion_group! {
        name = benches;
        config = Criterion::default().sample_size(10);
        targets = sample_bench
    }

    #[test]
    fn group_macro_expands_and_runs() {
        benches();
    }

    #[test]
    fn bencher_measures_something() {
        let mut b = Bencher { mean_ns: 0.0 };
        b.iter(|| black_box((0..1000u64).sum::<u64>()));
        assert!(b.mean_ns >= 0.0);
    }
}
