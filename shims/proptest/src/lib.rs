//! Offline shim for the `proptest` crate.
//!
//! Implements the subset of proptest 1.x this workspace uses:
//!
//! * the [`proptest!`] macro (optional `#![proptest_config(...)]` inner
//!   attribute, `arg in strategy` parameters),
//! * [`Strategy`] with an associated `Value` type and `prop_map`,
//! * strategies: integer ranges (`Range`/`RangeInclusive`), tuples,
//!   [`any`], [`collection::vec`], [`collection::hash_set`],
//!   [`option::of`],
//! * `prop_assert!` / `prop_assert_eq!` / `prop_assert_ne!`,
//! * [`ProptestConfig::with_cases`].
//!
//! There is **no shrinking**: a failing case panics immediately with the
//! assertion message. Generation is deterministic per test function and
//! case index, so failures reproduce.

#![forbid(unsafe_code)]

use std::collections::HashSet;
use std::hash::Hash;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// Run-time configuration for a `proptest!` block.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of generated cases per test function.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Upstream defaults to 256; tree + simulator tests here are costly
        // per case, so the shim defaults lower. Explicit configs override.
        ProptestConfig { cases: 32 }
    }
}

/// Deterministic generation RNG (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Deterministic RNG for (test identity, case index).
    pub fn for_case(test_hash: u64, case: u64) -> Self {
        TestRng {
            state: test_hash ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0xD1B5_4A32_D192_ED03,
        }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform usize in `[lo, hi)`.
    pub fn usize_in(&mut self, lo: usize, hi: usize) -> usize {
        assert!(lo < hi, "empty range");
        lo + (self.next_u64() as usize) % (hi - lo)
    }

    /// Uniform f64 in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// A value generator. The shim generates one value per call; there is no
/// shrinking tree.
pub trait Strategy {
    /// The generated value type.
    type Value;

    /// Generate one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Map generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// Output of [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                (self.start as u128).wrapping_add((rng.next_u64() as u128) % span) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as u128) - (lo as u128) + 1;
                (lo as u128 + (rng.next_u64() as u128) % span) as $t
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! impl_signed_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + ((rng.next_u64() as u128) % span) as i128) as $t
            }
        }
    )*};
}
impl_signed_range_strategy!(i32, i64);

macro_rules! impl_float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let unit = (rng.next_u64() >> 11) as $t / (1u64 << 53) as $t;
                self.start + unit * (self.end - self.start)
            }
        }
    )*};
}
impl_float_range_strategy!(f32, f64);

macro_rules! impl_tuple_strategy {
    ($(($($n:ident $idx:tt),+))*) => {$(
        impl<$($n: Strategy),+> Strategy for ($($n,)+) {
            type Value = ($($n::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}
impl_tuple_strategy! {
    (A 0)
    (A 0, B 1)
    (A 0, B 1, C 2)
    (A 0, B 1, C 2, D 3)
}

/// Types with a canonical "anything" strategy (subset of
/// `proptest::arbitrary::Arbitrary`).
pub trait Arbitrary: Sized {
    /// Generate an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Strategy returned by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct AnyStrategy<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The "any value of `T`" strategy.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(PhantomData)
}

/// Collection size specification: an exact size or a size range.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    /// exclusive
    hi: usize,
}

impl SizeRange {
    fn pick(&self, rng: &mut TestRng) -> usize {
        if self.lo + 1 >= self.hi {
            self.lo
        } else {
            rng.usize_in(self.lo, self.hi)
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n + 1 }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            lo: r.start,
            hi: r.end,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        SizeRange {
            lo: *r.start(),
            hi: *r.end() + 1,
        }
    }
}

/// Collection strategies (subset of `proptest::collection`).
pub mod collection {
    use super::*;

    /// Strategy for `Vec<S::Value>` of a size drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// Strategy for `HashSet<S::Value>` of a size drawn from `size`.
    ///
    /// Duplicate draws are retried a bounded number of times; if the value
    /// space is too small the set may come out smaller than requested.
    pub fn hash_set<S>(element: S, size: impl Into<SizeRange>) -> HashSetStrategy<S>
    where
        S: Strategy,
        S::Value: Eq + Hash,
    {
        HashSetStrategy {
            element,
            size: size.into(),
        }
    }

    /// See [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// See [`hash_set`].
    #[derive(Debug, Clone)]
    pub struct HashSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S> Strategy for HashSetStrategy<S>
    where
        S: Strategy,
        S::Value: Eq + Hash,
    {
        type Value = HashSet<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> HashSet<S::Value> {
            let n = self.size.pick(rng);
            let mut out = HashSet::with_capacity(n);
            let mut attempts = 0usize;
            while out.len() < n && attempts < n * 20 + 100 {
                out.insert(self.element.generate(rng));
                attempts += 1;
            }
            out
        }
    }
}

/// Option strategies (subset of `proptest::option`).
pub mod option {
    use super::*;

    /// `Some(value)` half the time, `None` otherwise.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    /// See [`of`].
    #[derive(Debug, Clone)]
    pub struct OptionStrategy<S> {
        inner: S,
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.next_u64() & 1 == 0 {
                Some(self.inner.generate(rng))
            } else {
                None
            }
        }
    }
}

/// Assert inside a proptest body (panics on failure — no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Equality assert inside a proptest body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Inequality assert inside a proptest body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// The main entry point: wraps test functions whose arguments are drawn
/// from strategies.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_fns! { cfg = ($cfg); $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_fns! { cfg = ($crate::ProptestConfig::default()); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (
        cfg = ($cfg:expr);
        $(
            $(#[$meta:meta])*
            fn $name:ident( $($arg:pat in $strat:expr),+ $(,)? ) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __cfg: $crate::ProptestConfig = $cfg;
                // Stable per-function hash: file + line + name length.
                let __hash: u64 = {
                    let mut h = 0xcbf2_9ce4_8422_2325u64;
                    for b in concat!(file!(), "::", stringify!($name)).bytes() {
                        h = (h ^ b as u64).wrapping_mul(0x1000_0000_01b3);
                    }
                    h
                };
                for __case in 0..__cfg.cases as u64 {
                    let mut __rng = $crate::TestRng::for_case(__hash, __case);
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut __rng);)+
                    $body
                }
            }
        )*
    };
}

/// Common imports, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, ProptestConfig, Strategy,
    };

    /// The `prop` namespace (`prop::collection`, `prop::option`).
    pub mod prop {
        pub use crate::collection;
        pub use crate::option;
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn determinism_per_case() {
        let s = prop::collection::vec(0u8..=255, 3..10);
        let mut a = crate::TestRng::for_case(1, 2);
        let mut b = crate::TestRng::for_case(1, 2);
        assert_eq!(
            crate::Strategy::generate(&s, &mut a),
            crate::Strategy::generate(&s, &mut b)
        );
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]
        #[test]
        fn generated_values_respect_strategies(
            v in prop::collection::vec((0usize..10, prop::option::of(5u64..9)), 1..20),
            flag in any::<bool>(),
            byte in 0u8..=0xFE,
        ) {
            prop_assert!(!v.is_empty() && v.len() < 20);
            for (a, b) in &v {
                prop_assert!(*a < 10);
                if let Some(b) = b {
                    prop_assert!((5..9).contains(b));
                }
            }
            prop_assert!(byte <= 0xFE);
            let _ = flag;
        }
    }

    proptest! {
        #[test]
        fn hash_sets_are_unique_and_sized(
            s in prop::collection::hash_set(prop::collection::vec(any::<u8>(), 6), 5..50)
        ) {
            prop_assert!(s.len() >= 5 && s.len() < 50);
            for v in &s {
                prop_assert_eq!(v.len(), 6);
            }
        }
    }

    proptest! {
        #[test]
        fn prop_map_applies(
            doubled in (1u32..100).prop_map(|x| x * 2)
        ) {
            prop_assert!(doubled % 2 == 0);
            prop_assert_ne!(doubled, 0);
        }
    }
}
