//! Offline shim for the `rand` crate.
//!
//! Exposes exactly the subset of rand 0.8's API that this workspace uses:
//! [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], [`RngCore`] and the
//! [`Rng`] extension trait with `gen_range`/`gen_bool`. The generator is a
//! SplitMix64 — deterministic in its seed and statistically fine for
//! workload generation, but **not** bit-compatible with upstream rand.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Concrete RNG implementations.
pub mod rngs {
    /// Deterministic 64-bit generator (SplitMix64 core).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        pub(crate) state: u64,
    }
}

use rngs::StdRng;

impl StdRng {
    fn splitmix(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Core RNG operations (subset of `rand_core::RngCore`).
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl RngCore for StdRng {
    fn next_u64(&mut self) -> u64 {
        self.splitmix()
    }
}

/// Seeding (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Construct from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        // Pre-scramble so nearby seeds diverge immediately.
        let mut rng = StdRng {
            state: seed ^ 0x5DEE_CE66_D0F1_5A1D,
        };
        rng.splitmix();
        rng
    }
}

/// A type that can be sampled uniformly from a range (subset of
/// `rand::distributions::uniform::SampleRange`).
pub trait SampleRange {
    /// The sampled value type.
    type Output;
    /// Draw one uniform sample from the range.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                (self.start as u128 + (rng.next_u64() as u128) % span) as $t
            }
        }
        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi as u128) - (lo as u128) + 1;
                (lo as u128 + (rng.next_u64() as u128) % span) as $t
            }
        }
    )*};
}
impl_int_range!(u8, u16, u32, u64, usize);

macro_rules! impl_signed_range {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + ((rng.next_u64() as u128) % span) as i128) as $t
            }
        }
        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi as i128 - lo as i128 + 1) as u128;
                (lo as i128 + ((rng.next_u64() as u128) % span) as i128) as $t
            }
        }
    )*};
}
impl_signed_range!(i32, i64);

macro_rules! impl_float_range {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let unit = (rng.next_u64() >> 11) as $t / (1u64 << 53) as $t;
                self.start + unit * (self.end - self.start)
            }
        }
    )*};
}
impl_float_range!(f32, f64);

/// Types producible by [`Rng::gen`] (subset of the `Standard` distribution).
pub trait Standard: Sized {
    /// Draw one uniformly random value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i32, i64);

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Extension methods (subset of `rand::Rng`).
pub trait Rng: RngCore {
    /// Uniformly random value of `T`.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Uniform sample from `range`.
    fn gen_range<S: SampleRange>(&mut self, range: S) -> S::Output
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }
}

impl<T: RngCore> Rng for T {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_in_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let (x, y, z) = (a.next_u64(), b.next_u64(), c.next_u64());
        assert_eq!(x, y);
        assert_ne!(x, z);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.gen_range(10usize..20);
            assert!((10..20).contains(&v));
            let w = rng.gen_range(0u8..=0xFE);
            assert!(w <= 0xFE);
            let f = rng.gen_range(0.0f64..1.0);
            assert!((0.0..1.0).contains(&f));
            let s = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&s));
        }
    }

    #[test]
    fn gen_bool_respects_probability() {
        let mut rng = StdRng::seed_from_u64(2);
        let trues = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2_500..3_500).contains(&trues), "{trues}");
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn fill_bytes_covers_partial_chunks() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }

    #[test]
    fn output_is_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut buckets = [0u32; 16];
        for _ in 0..16_000 {
            buckets[(rng.next_u64() >> 60) as usize] += 1;
        }
        assert!(
            buckets.iter().all(|&b| (700..1300).contains(&b)),
            "{buckets:?}"
        );
    }
}
